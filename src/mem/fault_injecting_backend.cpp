#include "mem/fault_injecting_backend.hpp"

#include <chrono>
#include <cstring>
#include <thread>

namespace froram {

const char*
toString(FaultOp op)
{
    switch (op) {
      case FaultOp::Read:
        return "read";
      case FaultOp::Write:
        return "write";
      case FaultOp::GatherView:
        return "gatherView";
      case FaultOp::StreamBatch:
        return "streamBatch";
      case FaultOp::Sync:
        return "sync";
      case FaultOp::Prefetch:
        return "prefetch";
      case FaultOp::JournalAppend:
        return "journalAppend";
      case FaultOp::JournalSync:
        return "journalSync";
      case FaultOp::JournalRoll:
        return "journalRoll";
    }
    return "?";
}

const char*
toString(FaultKind kind)
{
    switch (kind) {
      case FaultKind::Eio:
        return "EIO";
      case FaultKind::TornWrite:
        return "torn write";
      case FaultKind::BitRot:
        return "bit rot";
      case FaultKind::Latency:
        return "latency spike";
    }
    return "?";
}

void
FaultSchedule::inject(const FaultSpec& spec)
{
    std::lock_guard<std::mutex> g(mu_);
    specs_.push_back(spec);
}

void
FaultSchedule::setRandomRate(double rate, u64 seed)
{
    FRORAM_ASSERT(rate >= 0.0 && rate <= 1.0,
                  "fault rate must be a probability");
    std::lock_guard<std::mutex> g(mu_);
    randomRate_ = rate;
    rng_ = Xoshiro256(seed);
}

void
FaultSchedule::setRandomJournalRate(double rate, u64 seed)
{
    FRORAM_ASSERT(rate >= 0.0 && rate <= 1.0,
                  "fault rate must be a probability");
    std::lock_guard<std::mutex> g(mu_);
    randomJournalRate_ = rate;
    journalRng_ = Xoshiro256(seed);
}

void
FaultSchedule::clear()
{
    std::lock_guard<std::mutex> g(mu_);
    specs_.clear();
    randomRate_ = 0.0;
    randomJournalRate_ = 0.0;
}

u64
FaultSchedule::opsSeen(FaultOp op) const
{
    std::lock_guard<std::mutex> g(mu_);
    return opsSeen_[static_cast<u32>(op)];
}

u64
FaultSchedule::faultsFired() const
{
    std::lock_guard<std::mutex> g(mu_);
    return fired_;
}

FaultSchedule::Decision
FaultSchedule::onOp(FaultOp op)
{
    std::lock_guard<std::mutex> g(mu_);
    const u64 seen = opsSeen_[static_cast<u32>(op)]++;
    for (FaultSpec& s : specs_) {
        if (s.op != op || s.count == 0 || seen < s.afterOps)
            continue;
        if (s.count != FaultSpec::kPersistentCount)
            --s.count;
        ++fired_;
        return {true, s};
    }
    if (randomRate_ > 0.0 &&
        (op == FaultOp::Read || op == FaultOp::GatherView)) {
        const double roll =
            static_cast<double>(rng_.next() >> 11) * 0x1.0p-53;
        if (roll < randomRate_) {
            ++fired_;
            FaultSpec s;
            s.op = op;
            s.kind = FaultKind::Eio;
            s.transient = true;
            return {true, s};
        }
    }
    if (randomJournalRate_ > 0.0 &&
        (op == FaultOp::JournalAppend || op == FaultOp::JournalSync)) {
        const double roll =
            static_cast<double>(journalRng_.next() >> 11) * 0x1.0p-53;
        if (roll < randomJournalRate_) {
            ++fired_;
            FaultSpec s;
            s.op = op;
            s.kind = FaultKind::Eio;
            s.transient = true;
            return {true, s};
        }
    }
    return {false, {}};
}

FaultInjectingBackend::FaultInjectingBackend(
    std::unique_ptr<StorageBackend> inner,
    std::shared_ptr<FaultSchedule> schedule)
    : inner_(std::move(inner)), schedule_(std::move(schedule))
{
    FRORAM_ASSERT(inner_ != nullptr, "fault decorator needs a backend");
    FRORAM_ASSERT(schedule_ != nullptr, "fault decorator needs a schedule");
}

namespace {

void
sleepUs(u64 us)
{
    if (us != 0)
        std::this_thread::sleep_for(std::chrono::microseconds(us));
}

void
flipBit(u8* bytes, u64 len, u64 bit_index)
{
    if (len == 0)
        return;
    const u64 bit = bit_index % (len * 8);
    bytes[bit / 8] ^= static_cast<u8>(1u << (bit % 8));
}

} // namespace

void
FaultInjectingBackend::throwEio(FaultOp op, const FaultSpec& spec)
{
    throw StorageError(std::string("injected ") +
                           (spec.transient ? "transient" : "persistent") +
                           " I/O error on " + toString(op),
                       spec.transient);
}

void
FaultInjectingBackend::read(u64 addr, u8* dst, u64 len)
{
    const auto d = schedule_->onOp(FaultOp::Read);
    if (!d.fire) {
        inner_->read(addr, dst, len);
        return;
    }
    switch (d.spec.kind) {
      case FaultKind::Eio:
      case FaultKind::TornWrite: // meaningless for reads: treat as Eio
        throwEio(FaultOp::Read, d.spec);
      case FaultKind::BitRot:
        inner_->read(addr, dst, len);
        flipBit(dst, len, d.spec.bitIndex);
        return;
      case FaultKind::Latency:
        sleepUs(d.spec.latencyUs);
        inner_->read(addr, dst, len);
        return;
    }
}

void
FaultInjectingBackend::write(u64 addr, const u8* src, u64 len)
{
    const auto d = schedule_->onOp(FaultOp::Write);
    if (!d.fire) {
        inner_->write(addr, src, len);
        return;
    }
    switch (d.spec.kind) {
      case FaultKind::Eio:
        throwEio(FaultOp::Write, d.spec);
      case FaultKind::TornWrite: {
        u64 torn = d.spec.tornBytes == FaultSpec::kHalfTorn
                       ? len / 2
                       : d.spec.tornBytes;
        torn = torn < len ? torn : len;
        inner_->write(addr, src, torn);
        throw StorageError(
            std::string("injected torn write (") + std::to_string(torn) +
                "/" + std::to_string(len) + " bytes landed)",
            d.spec.transient);
      }
      case FaultKind::BitRot: {
        // Silent persistent corruption: store a rotted copy, report
        // success. Scratch allocation is fine — this path only exists
        // under injection.
        std::vector<u8> rotten(src, src + len);
        flipBit(rotten.data(), len, d.spec.bitIndex);
        inner_->write(addr, rotten.data(), len);
        return;
      }
      case FaultKind::Latency:
        sleepUs(d.spec.latencyUs);
        inner_->write(addr, src, len);
        return;
    }
}

u8*
FaultInjectingBackend::view(u64 addr, u64 len)
{
    // No in-place views under injection: a raw pointer would bypass the
    // schedule (see file doc). Callers fall back to read()/write().
    (void)addr;
    (void)len;
    return nullptr;
}

u32
FaultInjectingBackend::gatherView(const ByteSpan* spans, u32 n, u8** views)
{
    const auto d = schedule_->onOp(FaultOp::GatherView);
    if (d.fire) {
        switch (d.spec.kind) {
          case FaultKind::Eio:
          case FaultKind::TornWrite:
            throwEio(FaultOp::GatherView, d.spec);
          case FaultKind::Latency:
            sleepUs(d.spec.latencyUs);
            break;
          case FaultKind::BitRot:
            break; // nothing to rot here; reads will be targeted instead
        }
    }
    for (u32 i = 0; i < n; ++i)
        views[i] = nullptr;
    (void)spans;
    return 0;
}

void
FaultInjectingBackend::prefetch(u64 addr, u64 len)
{
    // Advisory: never throws (see file doc). Latency still applies —
    // a slow readahead engine is a realistic fault mode.
    const auto d = schedule_->onOp(FaultOp::Prefetch);
    if (d.fire && d.spec.kind == FaultKind::Latency)
        sleepUs(d.spec.latencyUs);
    if (d.fire && d.spec.kind != FaultKind::Latency)
        return; // dropped advice is always correct
    inner_->prefetch(addr, len);
}

void
FaultInjectingBackend::sync()
{
    const auto d = schedule_->onOp(FaultOp::Sync);
    if (d.fire) {
        switch (d.spec.kind) {
          case FaultKind::Eio:
          case FaultKind::TornWrite:
          case FaultKind::BitRot: // a failed barrier, however phrased
            throw StorageError("injected durability-barrier (msync) "
                               "failure",
                               d.spec.transient);
          case FaultKind::Latency:
            sleepUs(d.spec.latencyUs);
            break;
        }
    }
    inner_->sync();
}

u64
FaultInjectingBackend::streamBatch(const ByteSpan* spans, u32 n,
                                   bool is_write)
{
    const auto d = schedule_->onOp(FaultOp::StreamBatch);
    if (d.fire) {
        switch (d.spec.kind) {
          case FaultKind::Eio:
          case FaultKind::TornWrite:
          case FaultKind::BitRot:
            throwEio(FaultOp::StreamBatch, d.spec);
          case FaultKind::Latency:
            sleepUs(d.spec.latencyUs);
            break;
        }
    }
    return inner_->streamBatch(spans, n, is_write);
}

} // namespace froram
