/**
 * @file
 * DRAM-timed storage backend: FlatMemoryBackend data plane plus the
 * cycle-level DramModel timing plane.
 */
#ifndef FRORAM_MEM_TIMED_DRAM_BACKEND_HPP
#define FRORAM_MEM_TIMED_DRAM_BACKEND_HPP

#include "mem/dram_model.hpp"
#include "mem/flat_memory_backend.hpp"
#include "mem/storage_backend.hpp"

namespace froram {

/**
 * The evaluation backend: every access batch is priced by the same
 * DramModel the figure-reproduction benchmarks used when it was wired in
 * directly, so their timing output is bit-identical. Data is held in
 * host RAM (a DRAM simulator has no payload store of its own).
 */
class TimedDramBackend : public StorageBackend {
  public:
    explicit TimedDramBackend(const DramConfig& config) : dram_(config) {}

    StorageBackendKind kind() const override
    {
        return StorageBackendKind::TimedDram;
    }

    void read(u64 addr, u8* dst, u64 len) override
    {
        data_.read(addr, dst, len);
    }

    void write(u64 addr, const u8* src, u64 len) override
    {
        data_.write(addr, src, len);
    }

    u8* view(u64 addr, u64 len) override { return data_.view(addr, len); }

    u64 bytesTouched() const override { return data_.bytesTouched(); }

    bool timed() const override { return true; }

    u64 accessBatch(const std::vector<DramRequest>& requests) override
    {
        return dram_.accessBatch(requests);
    }

    /** Each run priced as one sequential burst stream: back-to-back
     *  bursts covering the run's bytes, through the same DramModel (one
     *  row activate per row crossed, streamed CAS within it). */
    u64
    streamBatch(const ByteSpan* spans, u32 n, bool is_write) override
    {
        const u64 burst = dram_.config().burstBytes;
        streamReqs_.clear(); // reusable member batch: capacity retained
        for (u32 i = 0; i < n; ++i) {
            if (spans[i].len == 0)
                continue;
            const u64 first = spans[i].addr / burst;
            const u64 last = (spans[i].addr + spans[i].len - 1) / burst;
            for (u64 b = first; b <= last; ++b)
                streamReqs_.push_back({b * burst, is_write});
        }
        return dram_.accessBatch(streamReqs_);
    }

    u64 burstBytes() const override { return dram_.config().burstBytes; }

    u64 layoutUnitBytes() const override
    {
        return u64{dram_.config().rowBytes} * dram_.config().channels;
    }

    DramModel* dramModel() override { return &dram_; }

    DramModel& dram() { return dram_; }
    const DramModel& dram() const { return dram_; }

  private:
    DramModel dram_;
    FlatMemoryBackend data_;
    std::vector<DramRequest> streamReqs_; ///< streamBatch scratch
};

} // namespace froram

#endif // FRORAM_MEM_TIMED_DRAM_BACKEND_HPP
