/**
 * @file
 * Cycle-level DRAM timing model.
 *
 * The model tracks per-bank open rows and per-channel data bus occupancy
 * and services request batches (one ORAM path read or write) in order,
 * overlapping row activation of one bank with data transfer of another, as
 * a real memory controller would. It reproduces the first-order behaviors
 * the paper's evaluation depends on: row-buffer locality from the subtree
 * layout, near-peak sequential bandwidth, and sub-linear scaling with
 * channel count due to channel/bank conflicts (Table 2).
 */
#ifndef FRORAM_MEM_DRAM_MODEL_HPP
#define FRORAM_MEM_DRAM_MODEL_HPP

#include <vector>

#include "checkpoint/checkpoint.hpp"
#include "mem/dram_config.hpp"
#include "util/stats.hpp"

namespace froram {

/** Stateful DRAM timing simulator; all times in picoseconds. */
class DramModel {
  public:
    explicit DramModel(const DramConfig& config);

    /**
     * Service a batch of burst requests issued back-to-back by the ORAM
     * controller (e.g. all bursts of a path read). Returns the elapsed
     * time in picoseconds from issue of the first request to completion
     * of the last, advancing the model clock.
     */
    u64 accessBatch(const std::vector<DramRequest>& requests);

    /** Service one isolated burst (insecure-baseline memory access). */
    u64 accessSingle(u64 addr, bool is_write);

    /** Idle the model for `ps` picoseconds (compute phases). */
    void idle(u64 ps);

    /** Decompose a physical address for inspection/testing. */
    struct Decoded {
        u32 channel;
        u32 bank;
        u64 row;
        u64 col;
    };
    Decoded decode(u64 addr) const;

    const DramConfig& config() const { return config_; }
    const StatSet& stats() const { return stats_; }
    StatSet& stats() { return stats_; }

    /** Current model time in picoseconds. */
    u64 now() const { return now_; }

    /** @name Checkpoint/restore
     *
     * The model clock, per-bank open rows and bus occupancy determine
     * every future access latency; a restored simulation must price the
     * next path exactly like the uninterrupted one would have.
     * @{ */
    void saveState(CheckpointWriter& w) const;
    void restoreState(CheckpointReader& r);
    /** @} */

  private:
    struct Bank {
        i64 openRow = -1;    // -1: precharged (no open row)
        u64 nextColAt = 0;   // earliest time a new column op may start
        u64 activatedAt = 0; // time of last ACT (for tRAS)
        u64 lastWriteEnd = 0; // for write recovery before precharge
    };

    struct Channel {
        std::vector<Bank> banks;
        u64 busFreeAt = 0; // earliest time the data bus is free
    };

    /** Issue one burst; returns its completion time. */
    u64 issue(const DramRequest& req);

    u64 cyc(u32 n) const { return static_cast<u64>(n) * config_.timing.tCkPs; }

    DramConfig config_;
    std::vector<Channel> channels_;
    u64 now_ = 0;
    StatSet stats_;
};

} // namespace froram

#endif // FRORAM_MEM_DRAM_MODEL_HPP
