#include "mem/tree_layout.hpp"

#include <algorithm>

namespace froram {

SubtreeLayout::SubtreeLayout(u32 levels, u64 bucket_bytes, u64 unit_bytes,
                             bool pack_tail)
    : TreeLayout(levels, bucket_bytes)
{
    // Largest k with (2^k - 1) * bucketBytes <= unitBytes; at least 1.
    k_ = 1;
    while (k_ < 20 && (((u64{1} << (k_ + 1)) - 1) * bucketBytes_) <=
                          unit_bytes) {
        ++k_;
    }

    // Super-level s spans tree levels [s*k, s*k + k). The number of
    // subtrees rooted at super-level s is 2^(s*k). With pack_tail, the
    // final super-level's subtrees keep only the levels that exist.
    const u32 num_groups = (levels_ + 1 + k_ - 1) / k_;
    groupByteBase_.resize(num_groups + 1, 0);
    groupStride_.resize(num_groups, 0);
    groupDepth_.resize(num_groups, 0);
    u64 base = 0;
    for (u32 s = 0; s < num_groups; ++s) {
        const u32 depth = pack_tail
                              ? std::min(k_, levels_ + 1 - s * k_)
                              : k_;
        groupDepth_[s] = depth;
        groupStride_[s] = ((u64{1} << depth) - 1) * bucketBytes_;
        groupByteBase_[s] = base;
        base += (u64{1} << (s * k_)) * groupStride_[s];
    }
    groupByteBase_[num_groups] = base;
}

u64
SubtreeLayout::relativeAddressOf(BucketCoord b) const
{
    FRORAM_ASSERT(b.level <= levels_, "bucket level out of range");
    const u32 s = b.level / k_; // super-level
    const u32 r = b.level % k_; // level within the subtree
    const u64 subtree = b.index >> r; // subtree root index at level s*k
    // Offset inside the depth-k subtree: heap position of the node on the
    // sub-path of length r below the subtree root.
    const u64 local = b.index & ((u64{1} << r) - 1);
    const u64 offset = ((u64{1} << r) - 1) + local;
    return groupByteBase_[s] + subtree * groupStride_[s] +
           offset * bucketBytes_;
}

u64
SubtreeLayout::footprintBytes() const
{
    return groupByteBase_.back();
}

u32
SubtreeLayout::pathRuns(u64 leaf, PathRun* runs, u64* level_offset) const
{
    // One run per depth-k subtree crossed: the run starts at the subtree
    // root (the shallowest path bucket, always at subtree offset 0) and
    // ends just past the deepest path bucket in that subtree.
    const u32 num_groups = static_cast<u32>(groupDepth_.size());
    u32 n = 0;
    for (u32 s = 0; s < num_groups; ++s) {
        const u32 first = s * k_;
        if (first > levels_)
            break;
        const u32 depth = std::min(groupDepth_[s], levels_ + 1 - first);
        const u64 subtree = leaf >> (levels_ - first);
        const u64 run_base = baseAddr_ + groupByteBase_[s] +
                             subtree * groupStride_[s];
        u64 end = 0;
        for (u32 r = 0; r < depth; ++r) {
            const u32 l = first + r;
            const u64 local =
                (leaf >> (levels_ - l)) & ((u64{1} << r) - 1);
            const u64 off = (((u64{1} << r) - 1) + local) * bucketBytes_;
            level_offset[l] = off;
            end = off + bucketBytes_; // offsets grow with r
        }
        runs[n++] = {run_base, end, first, depth};
    }
    return n;
}

} // namespace froram
