#include "mem/tree_layout.hpp"

namespace froram {

SubtreeLayout::SubtreeLayout(u32 levels, u64 bucket_bytes, u64 unit_bytes)
    : TreeLayout(levels, bucket_bytes)
{
    // Largest k with (2^k - 1) * bucketBytes <= unitBytes; at least 1.
    k_ = 1;
    while (k_ < 20 && (((u64{1} << (k_ + 1)) - 1) * bucketBytes_) <=
                          unit_bytes) {
        ++k_;
    }
    subtreeBuckets_ = (u64{1} << k_) - 1;

    // Super-level s spans tree levels [s*k, s*k + k). The number of
    // subtrees rooted at super-level s is 2^(s*k). groupBase_[s] is the
    // ordinal of the first subtree of super-level s.
    const u32 num_groups = (levels_ + 1 + k_ - 1) / k_;
    groupBase_.resize(num_groups + 1, 0);
    u64 base = 0;
    for (u32 s = 0; s < num_groups; ++s) {
        groupBase_[s] = base;
        base += u64{1} << (s * k_);
    }
    groupBase_[num_groups] = base;
}

u64
SubtreeLayout::relativeAddressOf(BucketCoord b) const
{
    FRORAM_ASSERT(b.level <= levels_, "bucket level out of range");
    const u32 s = b.level / k_; // super-level
    const u32 r = b.level % k_; // level within the subtree
    const u64 subtree = b.index >> r; // subtree root index at level s*k
    const u64 ordinal = groupBase_[s] + subtree;
    // Offset inside the depth-k subtree: heap position of the node on the
    // sub-path of length r below the subtree root.
    const u64 local = b.index & ((u64{1} << r) - 1);
    const u64 offset = ((u64{1} << r) - 1) + local;
    return (ordinal * subtreeBuckets_ + offset) * bucketBytes_;
}

u64
SubtreeLayout::footprintBytes() const
{
    return groupBase_.back() * subtreeBuckets_ * bucketBytes_;
}

} // namespace froram
