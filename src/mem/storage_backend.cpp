#include "mem/storage_backend.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <set>

#include <dirent.h>
#include <sys/stat.h>
#include <sys/types.h>

#include "mem/fault_injecting_backend.hpp"
#include "mem/flat_memory_backend.hpp"
#include "mem/mmap_file_backend.hpp"
#include "mem/retrying_backend.hpp"
#include "mem/timed_dram_backend.hpp"

namespace froram {

const char*
toString(StorageBackendKind kind)
{
    switch (kind) {
      case StorageBackendKind::Flat:
        return "flat";
      case StorageBackendKind::TimedDram:
        return "dram";
      case StorageBackendKind::MmapFile:
        return "mmap";
    }
    panic("unreachable");
}

StorageBackendKind
storageBackendKindFromName(const std::string& name)
{
    if (name == "flat")
        return StorageBackendKind::Flat;
    if (name == "dram")
        return StorageBackendKind::TimedDram;
    if (name == "mmap")
        return StorageBackendKind::MmapFile;
    fatal("unknown storage backend: ", name,
          " (expected flat, dram or mmap)");
}

namespace {

/** The functional medium itself, before any decorators. */
std::unique_ptr<StorageBackend>
makeBareBackend(const StorageBackendConfig& config)
{
    switch (config.kind) {
      case StorageBackendKind::Flat:
        return std::make_unique<FlatMemoryBackend>();
      case StorageBackendKind::TimedDram:
        return std::make_unique<TimedDramBackend>(
            DramConfig::ddr3(config.dramChannels));
      case StorageBackendKind::MmapFile:
        if (config.path.empty())
            fatal("mmap storage backend needs a file path");
        return std::make_unique<MmapFileBackend>(
            config.path, config.fileBytes, config.reset);
    }
    panic("unreachable");
}

} // namespace

std::unique_ptr<StorageBackend>
makeStorageBackend(const StorageBackendConfig& config)
{
    std::unique_ptr<StorageBackend> backend = makeBareBackend(config);
    if (config.faultSchedule == nullptr)
        return backend; // zero-fault hot path: no decorators, no cost
    backend = std::make_unique<FaultInjectingBackend>(
        std::move(backend), config.faultSchedule);
    if (config.retry.maxAttempts > 1)
        backend = std::make_unique<RetryingBackend>(std::move(backend),
                                                    config.retry);
    return backend;
}

namespace {

/** Shard index encoded in a `shard-NNNN.oram` name, or -1. */
int
parseShardFileName(const char* name)
{
    unsigned idx = 0;
    if (std::sscanf(name, "shard-%4u.oram", &idx) != 1)
        return -1;
    char expect[32];
    std::snprintf(expect, sizeof(expect), "shard-%04u.oram", idx);
    return std::strcmp(name, expect) == 0 ? static_cast<int>(idx) : -1;
}

/** Shard indices present under `dir`; fatal on a non-directory path. */
std::set<u32>
scanShardFiles(const std::string& dir)
{
    struct stat st;
    if (::stat(dir.c_str(), &st) != 0) {
        if (errno == ENOENT)
            return {};
        fatal("cannot stat shard directory '", dir, "': ",
              std::strerror(errno));
    }
    if (!S_ISDIR(st.st_mode))
        fatal("shard directory path '", dir,
              "' exists but is not a directory");

    DIR* d = ::opendir(dir.c_str());
    if (d == nullptr)
        fatal("cannot open shard directory '", dir, "': ",
              std::strerror(errno));
    std::set<u32> found;
    while (struct dirent* e = ::readdir(d)) {
        const int idx = parseShardFileName(e->d_name);
        if (idx >= 0)
            found.insert(static_cast<u32>(idx));
    }
    ::closedir(d);
    return found;
}

/** Fatal unless the indices are exactly 0 .. K-1 (K = found.size()). */
void
requireContiguous(const std::string& dir, const std::set<u32>& found)
{
    u32 expect = 0;
    for (const u32 idx : found) {
        if (idx != expect)
            fatal("shard directory '", dir, "' is torn: shard file ",
                  expect, " is missing but shard file ", idx,
                  " exists (partially written or foreign layout; "
                  "remove the directory to reinitialize)");
        ++expect;
    }
}

} // namespace

std::string
shardBackendPath(const std::string& dir, u32 shard)
{
    char name[32];
    std::snprintf(name, sizeof(name), "shard-%04u.oram", shard);
    return dir + "/" + name;
}

u32
countShardBackendFiles(const std::string& dir)
{
    const std::set<u32> found = scanShardFiles(dir);
    requireContiguous(dir, found);
    return static_cast<u32>(found.size());
}

void
prepareShardDirectory(const std::string& dir, u32 num_shards, bool reset)
{
    if (num_shards == 0)
        fatal("a sharded service needs at least one shard");
    if (dir.empty())
        fatal("sharded persistent storage needs a directory path");

    const std::set<u32> found = scanShardFiles(dir);
    if (found.empty() && ::mkdir(dir.c_str(), 0755) != 0 &&
        errno != EEXIST)
        fatal("cannot create shard directory '", dir, "': ",
              std::strerror(errno));
    if (!found.empty()) {
        requireContiguous(dir, found);
        if (found.size() != num_shards)
            fatal("shard directory '", dir, "' holds ", found.size(),
                  " shard backend file(s) but this service is "
                  "configured for ", num_shards,
                  " shards; refusing to ",
                  reset ? "clobber" : "reopen",
                  " a mismatched layout (remove the directory to "
                  "reinitialize)");
    }

    if (reset) {
        // Explicit reinitialization: the shard files (if any) will be
        // truncated by their backends, so the old service epoch is
        // gone — drop its manifest and snapshots too, or a later
        // open() would try to marry old trusted state to reset trees.
        // This runs even when no shard file survived (deleted by
        // hand): a stale MANIFEST must never outlive its epoch.
        DIR* d = ::opendir(dir.c_str());
        if (d == nullptr)
            fatal("cannot open shard directory '", dir, "': ",
                  std::strerror(errno));
        std::vector<std::string> stale;
        while (struct dirent* e = ::readdir(d)) {
            const std::string name = e->d_name;
            const bool is_ckpt =
                name.size() > 5 &&
                name.compare(name.size() - 5, 5, ".ckpt") == 0;
            // Journal segments belong to the old epoch exactly like the
            // snapshots do: a reinitialized service must never replay a
            // predecessor's request log over its fresh trees.
            const bool is_wal =
                name.size() > 4 &&
                name.compare(name.size() - 4, 4, ".wal") == 0;
            if (name == "MANIFEST" || is_ckpt || is_wal)
                stale.push_back(dir + "/" + name);
        }
        ::closedir(d);
        for (const std::string& path : stale)
            std::remove(path.c_str());
    }
}

} // namespace froram
