#include "mem/storage_backend.hpp"

#include "mem/flat_memory_backend.hpp"
#include "mem/mmap_file_backend.hpp"
#include "mem/timed_dram_backend.hpp"

namespace froram {

const char*
toString(StorageBackendKind kind)
{
    switch (kind) {
      case StorageBackendKind::Flat:
        return "flat";
      case StorageBackendKind::TimedDram:
        return "dram";
      case StorageBackendKind::MmapFile:
        return "mmap";
    }
    panic("unreachable");
}

StorageBackendKind
storageBackendKindFromName(const std::string& name)
{
    if (name == "flat")
        return StorageBackendKind::Flat;
    if (name == "dram")
        return StorageBackendKind::TimedDram;
    if (name == "mmap")
        return StorageBackendKind::MmapFile;
    fatal("unknown storage backend: ", name,
          " (expected flat, dram or mmap)");
}

std::unique_ptr<StorageBackend>
makeStorageBackend(const StorageBackendConfig& config)
{
    switch (config.kind) {
      case StorageBackendKind::Flat:
        return std::make_unique<FlatMemoryBackend>();
      case StorageBackendKind::TimedDram:
        return std::make_unique<TimedDramBackend>(
            DramConfig::ddr3(config.dramChannels));
      case StorageBackendKind::MmapFile:
        if (config.path.empty())
            fatal("mmap storage backend needs a file path");
        return std::make_unique<MmapFileBackend>(
            config.path, config.fileBytes, config.reset);
    }
    panic("unreachable");
}

} // namespace froram
