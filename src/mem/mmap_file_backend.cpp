#include "mem/mmap_file_backend.hpp"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace froram {

MmapFileBackend::MmapFileBackend(const std::string& path, u64 file_bytes,
                                 bool reset)
    : path_(path), capacity_(file_bytes)
{
    FRORAM_ASSERT(file_bytes > 0, "mmap backend needs a nonzero capacity");
    int flags = O_RDWR | O_CREAT;
    if (reset)
        flags |= O_TRUNC;
    fd_ = ::open(path.c_str(), flags, 0644);
    if (fd_ < 0)
        fatal("mmap backend cannot open ", path, ": ",
              std::strerror(errno));

    // Grow (never shrink) the sparse file to the requested capacity.
    struct stat st;
    if (::fstat(fd_, &st) != 0)
        fatal("mmap backend cannot stat ", path, ": ",
              std::strerror(errno));
    if (static_cast<u64>(st.st_size) > capacity_)
        capacity_ = static_cast<u64>(st.st_size);
    if (::ftruncate(fd_, static_cast<off_t>(capacity_)) != 0)
        fatal("mmap backend cannot size ", path, " to ", capacity_, ": ",
              std::strerror(errno));

    void* map = ::mmap(nullptr, capacity_, PROT_READ | PROT_WRITE,
                       MAP_SHARED, fd_, 0);
    if (map == MAP_FAILED)
        fatal("mmap backend cannot map ", path, ": ",
              std::strerror(errno));
    map_ = static_cast<u8*>(map);
}

MmapFileBackend::~MmapFileBackend()
{
    if (map_ != nullptr) {
        ::msync(map_, capacity_, MS_SYNC);
        ::munmap(map_, capacity_);
    }
    if (fd_ >= 0)
        ::close(fd_);
}

void
MmapFileBackend::read(u64 addr, u8* dst, u64 len)
{
    FRORAM_ASSERT(addr + len <= capacity_, "mmap read past capacity");
    std::memcpy(dst, map_ + addr, len);
}

void
MmapFileBackend::write(u64 addr, const u8* src, u64 len)
{
    FRORAM_ASSERT(addr + len <= capacity_, "mmap write past capacity");
    std::memcpy(map_ + addr, src, len);
}

u8*
MmapFileBackend::view(u64 addr, u64 len)
{
    FRORAM_ASSERT(addr + len <= capacity_, "mmap view past capacity");
    return map_ + addr;
}

void
MmapFileBackend::sync()
{
    if (::msync(map_, capacity_, MS_SYNC) != 0)
        fatal("msync failed on ", path_, ": ", std::strerror(errno));
}

u64
MmapFileBackend::bytesTouched() const
{
    struct stat st;
    if (::fstat(fd_, &st) != 0)
        return 0;
    return static_cast<u64>(st.st_blocks) * 512;
}

void
MmapFileBackend::onRegionAllocated(u64 total_bytes)
{
    if (total_bytes > capacity_)
        fatal("mmap backend ", path_, " too small: need ", total_bytes,
              " bytes, capacity ", capacity_,
              " (raise StorageBackendConfig::fileBytes)");
}

} // namespace froram
