#include "mem/mmap_file_backend.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "util/bitops.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace froram {

namespace {

/** Typed error for an OS call that failed with `err` (an errno value).
 *  EINTR/EAGAIN/EBUSY mark the error transient — reissuing the call may
 *  succeed — so the retry layer (when present) can absorb it. */
[[noreturn]] void
throwSys(const char* what, const std::string& path, int err)
{
    const bool transient = err == EINTR || err == EAGAIN || err == EBUSY;
    throw StorageError(std::string("mmap backend ") + what + " failed on " +
                           path + ": " + std::strerror(err),
                       transient);
}

} // namespace

MmapFileBackend::MmapFileBackend(const std::string& path, u64 file_bytes,
                                 bool reset)
    : path_(path), capacity_(file_bytes)
{
    FRORAM_ASSERT(file_bytes > 0, "mmap backend needs a nonzero capacity");
    int flags = O_RDWR | O_CREAT;
    if (reset)
        flags |= O_TRUNC;
    fd_ = ::open(path.c_str(), flags, 0644);
    if (fd_ < 0)
        throwSys("open", path, errno);

    // The throws below skip the destructor mid-construction: any
    // failure past open() must release the fd (and mapping) by hand or
    // a process probing candidate files would leak them.
    try {
        struct stat st;
        if (::fstat(fd_, &st) != 0)
            throwSys("fstat", path, errno);
        const bool fresh = reset || st.st_size == 0;
        if (!fresh) {
            // Reopening an existing file: it must be a froram backend
            // of a format this build understands, *before* anything
            // dereferences region offsets into it.
            if (static_cast<u64>(st.st_size) < kSuperblockBytes)
                fatal("mmap backend ", path, " is too small (",
                      st.st_size, " bytes) to be a froram backend "
                      "file; reset to reinitialize");
            // Grow (never shrink) the data plane to the requested size.
            const u64 existing_data =
                static_cast<u64>(st.st_size) - kSuperblockBytes;
            if (existing_data > capacity_)
                capacity_ = existing_data;
        }
        if (::ftruncate(fd_, static_cast<off_t>(capacity_ +
                                                kSuperblockBytes)) != 0)
            throwSys("ftruncate", path, errno);

        void* map = ::mmap(nullptr, capacity_ + kSuperblockBytes,
                           PROT_READ | PROT_WRITE, MAP_SHARED, fd_, 0);
        if (map == MAP_FAILED)
            throwSys("mmap", path, errno);
        map_ = static_cast<u8*>(map);

        if (fresh)
            writeSuperblock();
        else
            loadSuperblock();
    } catch (...) {
        if (map_ != nullptr)
            ::munmap(map_, capacity_ + kSuperblockBytes);
        ::close(fd_);
        map_ = nullptr;
        fd_ = -1;
        throw;
    }
}

MmapFileBackend::~MmapFileBackend()
{
    // Destructors cannot throw, but a failed final flush must not be
    // SILENT either: a caller who needed the durability guarantee had
    // to call sync() (which throws StorageError); this best-effort
    // flush only narrows the loss window, so report and carry on.
    if (map_ != nullptr) {
        if (::msync(map_, capacity_ + kSuperblockBytes, MS_SYNC) != 0)
            std::fprintf(stderr,
                         "froram: warning: final msync failed on %s: %s\n",
                         path_.c_str(), std::strerror(errno));
        if (::munmap(map_, capacity_ + kSuperblockBytes) != 0)
            std::fprintf(stderr,
                         "froram: warning: munmap failed on %s: %s\n",
                         path_.c_str(), std::strerror(errno));
    }
    if (fd_ >= 0 && ::close(fd_) != 0)
        std::fprintf(stderr, "froram: warning: close failed on %s: %s\n",
                     path_.c_str(), std::strerror(errno));
}

void
MmapFileBackend::writeSuperblock()
{
    std::memset(map_, 0, kSuperblockBytes);
    storeLe(map_, kSuperMagic);
    storeLe(map_ + 8, kSuperVersion, 4);
    storeLe(map_ + 16, 0);
}

void
MmapFileBackend::loadSuperblock()
{
    if (loadLe(map_) != kSuperMagic)
        fatal("mmap backend ", path_, " is not a froram backend file "
              "(or predates the superblock format); reset to "
              "reinitialize");
    const u32 version = static_cast<u32>(loadLe(map_ + 8, 4));
    if (version != kSuperVersion)
        fatal("mmap backend ", path_, " uses superblock format version ",
              version, "; this build reads version ", kSuperVersion);
    const u64 count = loadLe(map_ + 16);
    if (count > kMaxRegions)
        fatal("mmap backend ", path_, " superblock is corrupt (", count,
              " recorded regions)");
    recorded_.resize(count);
    for (u64 i = 0; i < count; ++i)
        recorded_[i] = loadLe(map_ + 24 + 8 * i);
}

void
MmapFileBackend::read(u64 addr, u8* dst, u64 len)
{
    FRORAM_ASSERT(addr + len <= capacity_, "mmap read past capacity");
    std::memcpy(dst, data(addr), len);
}

void
MmapFileBackend::write(u64 addr, const u8* src, u64 len)
{
    FRORAM_ASSERT(addr + len <= capacity_, "mmap write past capacity");
    std::memcpy(data(addr), src, len);
}

u8*
MmapFileBackend::view(u64 addr, u64 len)
{
    FRORAM_ASSERT(addr + len <= capacity_, "mmap view past capacity");
    return data(addr);
}

void
MmapFileBackend::prefetch(u64 addr, u64 len)
{
    if (len == 0 || addr >= capacity_)
        return;
    len = std::min(len, capacity_ - addr);
    // Page-align the advised range (madvise requires it).
    const u64 page = 4096;
    const u64 begin = (kSuperblockBytes + addr) & ~(page - 1);
    const u64 end = kSuperblockBytes + addr + len;
    // Memoize recently advised ranges: an ORAM path's shallow runs
    // (root subtree and its children) repeat on EVERY access and are
    // resident by construction, so re-advising them is a wasted
    // syscall per access. Keyed by base page AND covering extent — run
    // lengths vary with the path's position inside a subtree, and a
    // longer request through a memoized base must still be advised. A
    // stale memo entry only skips advice — a later touch faults
    // synchronously, which is always correct.
    const u64 slot = (begin / page) & (kAdvisedSlots - 1);
    if (advisedBase_[slot] == begin + 1 && advisedEnd_[slot] >= end)
        return;
    advisedBase_[slot] = begin + 1; // +1: distinguish addr 0 from empty
    advisedEnd_[slot] = end;
    // Advice only: ignore failures (e.g. kernels without WILLNEED
    // support for this mapping) — reads stay correct, just colder.
    (void)::madvise(map_ + begin, end - begin, MADV_WILLNEED);
}

void
MmapFileBackend::sync()
{
    if (::msync(map_, capacity_ + kSuperblockBytes, MS_SYNC) != 0)
        throwSys("msync", path_, errno);
}

u64
MmapFileBackend::bytesTouched() const
{
    struct stat st;
    if (::fstat(fd_, &st) != 0)
        return 0;
    return static_cast<u64>(st.st_blocks) * 512;
}

void
MmapFileBackend::onRegionAllocated(u64 total_bytes)
{
    if (total_bytes > capacity_)
        fatal("mmap backend ", path_, " too small: need ", total_bytes,
              " bytes, capacity ", capacity_,
              " (raise StorageBackendConfig::fileBytes)");
    if (replayIdx_ < recorded_.size()) {
        // Reopen: the allocation sequence must replay the persisted one
        // exactly, otherwise this configuration would place its trees at
        // different offsets and clobber (or misread) the stored regions.
        if (recorded_[replayIdx_] != total_bytes)
            fatal("mmap backend ", path_, " was persisted with a "
                  "different region layout: region ", replayIdx_,
                  " ended at ", recorded_[replayIdx_],
                  " bytes, this configuration requests ", total_bytes,
                  " (ORAM geometry/params differ from the persisted "
                  "system; reset the backend to reinitialize)");
        ++replayIdx_;
        return;
    }
    if (recorded_.size() >= kMaxRegions)
        fatal("mmap backend ", path_, " region log full (",
              kMaxRegions, " regions)");
    recorded_.push_back(total_bytes);
    storeLe(map_ + 24 + 8 * (recorded_.size() - 1), total_bytes);
    storeLe(map_ + 16, recorded_.size());
    ++replayIdx_;
}

} // namespace froram
