/**
 * @file
 * In-RAM storage backend: sparse chunked byte store, zero timing.
 */
#ifndef FRORAM_MEM_FLAT_MEMORY_BACKEND_HPP
#define FRORAM_MEM_FLAT_MEMORY_BACKEND_HPP

#include <memory>
#include <vector>

#include "mem/storage_backend.hpp"

namespace froram {

/**
 * Raw host-RAM storage with no timing model.
 *
 * The address space is materialized lazily in fixed-size chunks, so a
 * 64 GB ORAM whose accesses only ever touch a few thousand paths costs
 * host memory proportional to the buckets actually written, exactly like
 * the lazily-materialized bucket maps it replaces. Chunks are addressed
 * through a direct-indexed pointer table (8 bytes per possible chunk) so
 * the hot path's view() is an array index, not a hash lookup.
 */
class FlatMemoryBackend : public StorageBackend {
  public:
    FlatMemoryBackend() = default;

    StorageBackendKind kind() const override
    {
        return StorageBackendKind::Flat;
    }

    void read(u64 addr, u8* dst, u64 len) override;
    void write(u64 addr, const u8* src, u64 len) override;

    /** Advisory cache-line prefetch of a materialized range: host RAM
     *  is always resident, but the ORAM tree far exceeds the cache, so
     *  warming the next path's gather runs behind the current access's
     *  crypto work is a real win for the pipelined submit() engine. */
    void prefetch(u64 addr, u64 len) override;
    bool prefetchable() const override { return true; }

    /** In-place view when the range stays within one chunk (the chunk is
     *  materialized zero-filled if absent); nullptr across chunks. */
    u8* view(u64 addr, u64 len) override;

    u64 bytesTouched() const override
    {
        return materialized_ * kChunkBytes;
    }

  private:
    static constexpr u64 kChunkBytes = 64 * 1024;

    /** Chunk base pointer, materializing it (zero-filled) if absent. */
    u8* chunkFor(u64 chunk_index);

    std::vector<std::unique_ptr<u8[]>> chunks_;
    u64 materialized_ = 0;
};

} // namespace froram

#endif // FRORAM_MEM_FLAT_MEMORY_BACKEND_HPP
