/**
 * @file
 * In-RAM storage backend: sparse chunked byte store, zero timing.
 */
#ifndef FRORAM_MEM_FLAT_MEMORY_BACKEND_HPP
#define FRORAM_MEM_FLAT_MEMORY_BACKEND_HPP

#include <unordered_map>
#include <vector>

#include "mem/storage_backend.hpp"

namespace froram {

/**
 * Raw host-RAM storage with no timing model.
 *
 * The address space is materialized lazily in fixed-size chunks, so a
 * 64 GB ORAM whose accesses only ever touch a few thousand paths costs
 * host memory proportional to the buckets actually written, exactly like
 * the lazily-materialized bucket maps it replaces.
 */
class FlatMemoryBackend : public StorageBackend {
  public:
    FlatMemoryBackend() = default;

    StorageBackendKind kind() const override
    {
        return StorageBackendKind::Flat;
    }

    void read(u64 addr, u8* dst, u64 len) override;
    void write(u64 addr, const u8* src, u64 len) override;

    u64 bytesTouched() const override
    {
        return chunks_.size() * kChunkBytes;
    }

  private:
    static constexpr u64 kChunkBytes = 64 * 1024;

    std::unordered_map<u64, std::vector<u8>> chunks_;
};

} // namespace froram

#endif // FRORAM_MEM_FLAT_MEMORY_BACKEND_HPP
