/**
 * @file
 * Fault-injecting StorageBackend decorator.
 *
 * Wraps any functional backend and makes it misbehave on a seeded,
 * scriptable schedule: transient or persistent EIO on read / write /
 * gatherView / streamBatch / sync, torn (partial) writes, silent
 * bit-rot, and latency spikes. Every higher layer — TreeStorage, the
 * ORAM engines, the frontends, the sharded service — can thereby be
 * tested against *live* storage misbehavior, deterministically: the
 * schedule is driven by per-operation counters and a seeded RNG, never
 * by wall-clock state.
 *
 * Two deliberate design points:
 *
 *  - view()/gatherView() return no direct views while any fault can
 *    still fire. An in-place view would let callers bypass the
 *    decorator entirely (reads through a pointer cannot throw), so all
 *    data-plane traffic is funneled through read()/write(), where the
 *    schedule applies. The hot path degrades to its copy mode under
 *    injection — correctness-observable behavior is unchanged.
 *
 *  - prefetch() never throws. Prefetch is advisory by contract (a
 *    dropped advice is always correct), so an Eio scheduled against it
 *    only burns the scheduled firing; latency specs still apply.
 */
#ifndef FRORAM_MEM_FAULT_INJECTING_BACKEND_HPP
#define FRORAM_MEM_FAULT_INJECTING_BACKEND_HPP

#include <array>
#include <memory>
#include <mutex>
#include <vector>

#include "mem/storage_backend.hpp"
#include "util/rng.hpp"

namespace froram {

/** Data-plane operation class a fault spec targets. The Journal* ops
 *  are consumed by RequestJournal (src/journal/), not by the backend
 *  decorator: the journal's commit I/O — record append, group-commit
 *  fdatasync, segment roll — shares the per-shard schedule with the
 *  data plane so chaos scripts can target either side of a shard. */
enum class FaultOp : u32 {
    Read,          ///< read() (and gatherView, which degrades to reads)
    Write,         ///< write()
    GatherView,    ///< gatherView() itself (before any span resolves)
    StreamBatch,   ///< streamBatch() (timing plane)
    Sync,          ///< sync() — the msync-failure class
    Prefetch,      ///< prefetch() — latency only; EIO is swallowed
    JournalAppend, ///< journal record write() to the segment fd
    JournalSync,   ///< journal group-commit fdatasync()
    JournalRoll    ///< segment roll (fdatasync + new segment file)
};
constexpr u32 kNumFaultOps = 9;

const char* toString(FaultOp op);

/** What the fault does when it fires. */
enum class FaultKind : u32 {
    Eio,       ///< throw StorageError (transient or persistent)
    TornWrite, ///< write only a prefix of the bytes, then throw
    BitRot,    ///< silently flip one bit (reads: of the data returned;
               ///  writes: of the data stored)
    Latency    ///< sleep latencyUs, then perform the op normally
};

const char* toString(FaultKind kind);

/** One scripted fault. */
struct FaultSpec {
    FaultOp op = FaultOp::Read;
    FaultKind kind = FaultKind::Eio;
    /** Fires once at least `afterOps` operations of `op` completed
     *  before it (0 = eligible immediately). */
    u64 afterOps = 0;
    /** How many times to fire (kPersistentCount = forever). */
    u32 count = 1;
    /** Eio/TornWrite: marks the thrown StorageError transient. */
    bool transient = true;
    /** Latency: injected delay in microseconds. */
    u64 latencyUs = 0;
    /** BitRot: bit position within the op's byte range (mod len*8). */
    u64 bitIndex = 0;
    /** TornWrite: bytes actually written before the throw
     *  (kHalfTorn = half the request). */
    u64 tornBytes = kHalfTorn;

    static constexpr u32 kPersistentCount = 0xffffffffu;
    static constexpr u64 kHalfTorn = ~u64{0};
};

/**
 * Thread-safe fault schedule shared between a test/bench driver and the
 * FaultInjectingBackend(s) consuming it. Two sources compose:
 *
 *  - scripted specs (inject()): counter-triggered, fully deterministic;
 *  - a random mode (setRandomRate()): every Read/GatherView op fires a
 *    transient Eio with probability `rate`, from a seeded RNG — the
 *    soak-test workhorse.
 *
 * All counters are per schedule, so attaching one schedule per shard
 * keeps multi-threaded runs deterministic per shard.
 */
class FaultSchedule {
  public:
    /** Arm one scripted fault (appended; specs fire independently). */
    void inject(const FaultSpec& spec);

    /** Arm random transient Eio on reads at the given rate in [0, 1]. */
    void setRandomRate(double rate, u64 seed);

    /** Arm random transient Eio on journal commit I/O (JournalAppend /
     *  JournalSync) at the given rate in [0, 1] — the journal-fault
     *  soak workhorse. Independent of setRandomRate (own RNG), so
     *  arming one never perturbs the other's fault sequence. */
    void setRandomJournalRate(double rate, u64 seed);

    /** Disarm everything (counters keep running). */
    void clear();

    /** Operations of class `op` observed so far. */
    u64 opsSeen(FaultOp op) const;

    /** Total faults fired (all kinds, all ops). */
    u64 faultsFired() const;

    /** Decision handed to the backend for one operation. */
    struct Decision {
        bool fire = false;
        FaultSpec spec{};
    };

    /** Count one operation of class `op` and decide whether a fault
     *  fires on it (backend-side entry point). */
    Decision onOp(FaultOp op);

  private:
    mutable std::mutex mu_;
    std::vector<FaultSpec> specs_;
    std::array<u64, kNumFaultOps> opsSeen_{};
    u64 fired_ = 0;
    double randomRate_ = 0.0;
    Xoshiro256 rng_{0};
    double randomJournalRate_ = 0.0;
    Xoshiro256 journalRng_{0};
};

/** StorageBackend decorator applying a FaultSchedule (see file doc). */
class FaultInjectingBackend : public StorageBackend {
  public:
    FaultInjectingBackend(std::unique_ptr<StorageBackend> inner,
                          std::shared_ptr<FaultSchedule> schedule);

    StorageBackendKind kind() const override { return inner_->kind(); }

    void read(u64 addr, u8* dst, u64 len) override;
    void write(u64 addr, const u8* src, u64 len) override;
    u8* view(u64 addr, u64 len) override;
    u32 gatherView(const ByteSpan* spans, u32 n, u8** views) override;
    void prefetch(u64 addr, u64 len) override;
    bool prefetchable() const override { return inner_->prefetchable(); }
    void sync() override;
    bool persistent() const override { return inner_->persistent(); }
    u64 bytesTouched() const override { return inner_->bytesTouched(); }

    bool timed() const override { return inner_->timed(); }
    u64 accessBatch(const std::vector<DramRequest>& requests) override
    {
        return inner_->accessBatch(requests);
    }
    u64 streamBatch(const ByteSpan* spans, u32 n, bool is_write) override;
    u64 burstBytes() const override { return inner_->burstBytes(); }
    u64 layoutUnitBytes() const override
    {
        return inner_->layoutUnitBytes();
    }
    DramModel* dramModel() override { return inner_->dramModel(); }

    u64 allocRegion(u64 bytes) override
    {
        return inner_->allocRegion(bytes);
    }
    u64 allocatedBytes() const override
    {
        return inner_->allocatedBytes();
    }

    StorageBackend& inner() { return *inner_; }
    const FaultSchedule& schedule() const { return *schedule_; }

  private:
    /** Throw the StorageError a fired Eio-class spec calls for. */
    [[noreturn]] void throwEio(FaultOp op, const FaultSpec& spec);

    std::unique_ptr<StorageBackend> inner_;
    std::shared_ptr<FaultSchedule> schedule_;
};

} // namespace froram

#endif // FRORAM_MEM_FAULT_INJECTING_BACKEND_HPP
