#include "mem/retrying_backend.hpp"

#include <chrono>
#include <thread>

#include "util/bitops.hpp"

namespace froram {

RetryingBackend::RetryingBackend(std::unique_ptr<StorageBackend> inner,
                                 const RetryPolicy& policy)
    : inner_(std::move(inner)), policy_(policy)
{
    FRORAM_ASSERT(inner_ != nullptr, "retry decorator needs a backend");
    FRORAM_ASSERT(policy_.maxAttempts >= 1,
                  "retry policy needs at least one attempt");
}

void
RetryingBackend::backoff(u32 attempt)
{
    // Exponential base doubling per attempt, clamped, then up to +50%
    // deterministic jitter so retry storms from parallel shards decohere
    // while a given run stays reproducible.
    const u32 shift = attempt - 1 < 32 ? attempt - 1 : 31;
    u64 us = policy_.baseBackoffUs << shift;
    if (us > policy_.maxBackoffUs || us < policy_.baseBackoffUs)
        us = policy_.maxBackoffUs;
    const u64 nonce =
        jitterCounter_.fetch_add(1, std::memory_order_relaxed);
    const u64 jitter = splitmix64Mix(policy_.jitterSeed ^ nonce);
    us += (us / 2) * (jitter & 0xffff) / 0x10000;
    if (us != 0)
        std::this_thread::sleep_for(std::chrono::microseconds(us));
}

void
RetryingBackend::read(u64 addr, u8* dst, u64 len)
{
    withRetry([&] { inner_->read(addr, dst, len); });
}

void
RetryingBackend::write(u64 addr, const u8* src, u64 len)
{
    withRetry([&] { inner_->write(addr, src, len); });
}

u32
RetryingBackend::gatherView(const ByteSpan* spans, u32 n, u8** views)
{
    return withRetry([&] { return inner_->gatherView(spans, n, views); });
}

void
RetryingBackend::sync()
{
    withRetry([&] { inner_->sync(); });
}

u64
RetryingBackend::streamBatch(const ByteSpan* spans, u32 n, bool is_write)
{
    return withRetry(
        [&] { return inner_->streamBatch(spans, n, is_write); });
}

} // namespace froram
