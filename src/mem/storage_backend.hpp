/**
 * @file
 * Pluggable untrusted-storage backends.
 *
 * A StorageBackend is the physical medium under the ORAM tree. It has two
 * planes that the rest of the system consumes through one interface:
 *
 *  - a *data plane*: a flat, byte-addressed, zero-initialized address
 *    space that BackedTreeStorage serializes encrypted bucket images
 *    into. Regions are handed out by a deterministic bump allocator so a
 *    persistent backend maps each ORAM tree to the same extent on every
 *    run.
 *
 *  - a *timing plane*: accessBatch() prices a batch of burst requests
 *    (one ORAM path read or write) in picoseconds. Functional backends
 *    return 0; TimedDramBackend delegates to the cycle-level DramModel so
 *    every figure-reproduction benchmark is unchanged.
 *
 * Three implementations:
 *
 *  - FlatMemoryBackend: sparse in-RAM chunks, zero timing. The fast path
 *    for functional tests and throughput runs.
 *  - TimedDramBackend: FlatMemoryBackend data plane + DramModel timing
 *    plane (the previous hard-wired behavior, now behind the seam).
 *  - MmapFileBackend: file-backed mmap with msync durability; opens the
 *    persistent/durable-KV scenario.
 */
#ifndef FRORAM_MEM_STORAGE_BACKEND_HPP
#define FRORAM_MEM_STORAGE_BACKEND_HPP

#include <memory>
#include <string>
#include <vector>

#include "mem/dram_config.hpp"
#include "util/common.hpp"

namespace froram {

class DramModel;

/** One contiguous byte range of the data plane (a gather span). */
struct ByteSpan {
    u64 addr = 0;
    u64 len = 0;
};

/** Selects a StorageBackend implementation. */
enum class StorageBackendKind {
    Flat,     ///< in-RAM, zero timing
    TimedDram, ///< in-RAM, DramModel timing
    MmapFile  ///< file-backed mmap, zero timing, persistent
};

/** Human-readable backend name ("flat", "dram", "mmap"). */
const char* toString(StorageBackendKind kind);

/** Parse a backend name as printed by toString(); fatal on junk. */
StorageBackendKind storageBackendKindFromName(const std::string& name);

class FaultSchedule; // mem/fault_injecting_backend.hpp

/**
 * Transient-fault retry policy applied by RetryingBackend around raw
 * data-plane operations. A single backend read/write/gatherView/sync is
 * stateless with respect to the trusted ORAM controller, so reissuing
 * it is always safe — which is exactly why the retry lives here and not
 * in the ORAM engine, whose per-access state machine (PosMap remap
 * before the path access, Ring's incremental valid-mask updates) is NOT
 * restartable mid-access. Backoff is exponential with deterministic
 * (seeded, attempt-indexed) jitter so chaos runs stay reproducible.
 *
 * The same policy governs the request journal's commit I/O (append /
 * fdatasync / segment roll in src/journal/): a failed record write is
 * truncated back off the tail before the reissue, so retrying there is
 * idempotent for the same reason a raw backend write is.
 */
struct RetryPolicy {
    u32 maxAttempts = 3;   ///< total tries per operation (1 = no retry)
    u64 baseBackoffUs = 50;  ///< sleep before the first reissue
    u64 maxBackoffUs = 5000; ///< exponential backoff ceiling
    u64 jitterSeed = 0x6a177e12;
};

/** Construction-time knobs for makeStorageBackend(). */
struct StorageBackendConfig {
    StorageBackendKind kind = StorageBackendKind::TimedDram;
    /** TimedDram: DRAM channel count (DramConfig::ddr3 geometry). */
    u32 dramChannels = 2;
    /** MmapFile: backing file path. */
    std::string path;
    /** MmapFile: data-region capacity; must cover all allocRegion calls. */
    u64 fileBytes = u64{1} << 30;
    /** MmapFile: discard any existing file instead of reopening it. */
    bool reset = true;
    /**
     * Optional fault-injection schedule (tests/chaos runs): when set,
     * the functional backend is wrapped in a FaultInjectingBackend
     * honoring this schedule, and that in a RetryingBackend absorbing
     * transient faults under `retry`. Never part of any configuration
     * fingerprint — fault plumbing is operational, not behavioral.
     */
    std::shared_ptr<FaultSchedule> faultSchedule;
    /** Transient-fault retry policy (used only with a faultSchedule or
     *  a medium that can actually fail; in-RAM backends never do). */
    RetryPolicy retry{};
};

/**
 * Abstract untrusted storage medium (data plane + timing plane).
 *
 * The data plane reads back zeros for never-written bytes, matching the
 * zeroed-DRAM boot state the lazy-init ORAM relies on.
 */
class StorageBackend {
  public:
    virtual ~StorageBackend() = default;

    virtual StorageBackendKind kind() const = 0;

    /** @name Data plane
     *
     * Span-style access: read()/write() copy into/out of caller buffers
     * (readInto / writeFrom semantics), and view() exposes backend bytes
     * in place for the zero-copy hot path.
     * @{ */

    /** Copy `len` bytes at `addr` into `dst`; unwritten bytes read 0. */
    virtual void read(u64 addr, u8* dst, u64 len) = 0;

    /** Store `len` bytes from `src` at `addr`. */
    virtual void write(u64 addr, const u8* src, u64 len) = 0;

    /**
     * Mutable in-place view of [addr, addr + len), or nullptr when the
     * range is not contiguous in this backend's memory (callers must
     * fall back to read()/write()). Obtaining a view may materialize
     * backing storage, so only request views of ranges that will be (or
     * have been) written. Views are PINNED: they stay valid across
     * subsequent view()/gatherView()/read()/write() calls (the gather
     * path holds a whole path's views while issuing reads for its
     * viewless runs), and are only invalidated by the backend's
     * destruction. A backend that cannot pin a range must return
     * nullptr for it, never a temporary bounce buffer.
     */
    virtual u8*
    view(u64 addr, u64 len)
    {
        (void)addr;
        (void)len;
        return nullptr;
    }

    /**
     * Gather views: fill `views[i]` with an in-place pointer for
     * `spans[i]` (view() semantics per span — pinned, nullptr when a
     * span is not contiguous in this backend's memory). One call
     * resolves a whole ORAM path's runs, replacing per-bucket virtual
     * dispatch on the hot path.
     *
     * @return the number of spans that got a direct view
     */
    virtual u32
    gatherView(const ByteSpan* spans, u32 n, u8** views)
    {
        u32 direct = 0;
        for (u32 i = 0; i < n; ++i) {
            views[i] = view(spans[i].addr, spans[i].len);
            direct += views[i] != nullptr ? 1 : 0;
        }
        return direct;
    }

    /**
     * Advisory readahead: hint that [addr, addr + len) is about to be
     * read. MmapFile issues madvise(MADV_WILLNEED) so page faults for
     * the upcoming path overlap the caller's current compute; in-RAM
     * backends are already resident and make this a no-op. Never
     * affects data-plane contents or the timing plane.
     */
    virtual void
    prefetch(u64 addr, u64 len)
    {
        (void)addr;
        (void)len;
    }

    /** True when prefetch() actually does something; callers skip
     *  building prefetch batches entirely for always-resident media. */
    virtual bool prefetchable() const { return false; }

    /** Durability barrier (msync for MmapFile; no-op otherwise).
     *  Throws StorageError when the medium reports the barrier failed. */
    virtual void sync() {}

    /** True if data survives destruction (reopen with the same path). */
    virtual bool persistent() const { return false; }

    /** Bytes the data plane has materialized (RAM/disk footprint proxy). */
    virtual u64 bytesTouched() const = 0;

    /** Transient faults absorbed by a retry layer below this interface
     *  (0 for media that never fail; see RetryingBackend). */
    virtual u64 transientFaultsRetried() const { return 0; }
    /** @} */

    /** @name Timing plane @{ */

    /** True if accessBatch can return nonzero time. Callers may skip
     *  building request batches entirely for untimed backends. */
    virtual bool timed() const { return false; }

    /** Price a batch of back-to-back burst requests, in picoseconds. */
    virtual u64 accessBatch(const std::vector<DramRequest>& requests)
    {
        (void)requests;
        return 0;
    }

    /**
     * Price a batch of gathered runs, each as ONE sequential burst
     * stream over its byte range (the fetch shape of the gather path:
     * a subtree run is streamed like the row it occupies, instead of
     * being priced as per-bucket row activates). Untimed backends
     * return 0; TimedDramBackend feeds the streams through the same
     * DramModel as accessBatch.
     */
    virtual u64
    streamBatch(const ByteSpan* spans, u32 n, bool is_write)
    {
        (void)spans;
        (void)n;
        (void)is_write;
        return 0;
    }

    /** Burst granularity requests should be split into. */
    virtual u64 burstBytes() const { return 64; }

    /**
     * Locality unit for SubtreeLayout packing (one DRAM row across all
     * channels for timed backends; a page-ish default otherwise).
     */
    virtual u64 layoutUnitBytes() const { return u64{8192} * 2; }

    /** Underlying DramModel, or null for untimed backends. */
    virtual DramModel* dramModel() { return nullptr; }
    /** @} */

    /** @name Region allocator @{ */

    /**
     * Reserve `bytes` of the data plane and return the region's base
     * address. Purely a deterministic bump allocator: the same sequence
     * of calls yields the same extents on every run, which is how a
     * reopened persistent backend finds its trees again. Virtual so
     * decorators (fault injection, retry) forward to the inner backend,
     * whose allocation state may be persisted (the mmap region log).
     */
    virtual u64
    allocRegion(u64 bytes)
    {
        const u64 base = allocated_;
        allocated_ = roundUp(allocated_ + bytes, kRegionAlign);
        onRegionAllocated(allocated_);
        return base;
    }

    /** Total bytes handed out by allocRegion so far. */
    virtual u64 allocatedBytes() const { return allocated_; }
    /** @} */

  protected:
    /** Capacity hook: backends may reject growth past their capacity. */
    virtual void onRegionAllocated(u64 total_bytes) { (void)total_bytes; }

    static constexpr u64 kRegionAlign = 64;

  private:
    u64 allocated_ = 0;
};

/** Build a backend from a config; fatal on unusable configurations. */
std::unique_ptr<StorageBackend>
makeStorageBackend(const StorageBackendConfig& config);

/** @name Sharded-backend file plumbing
 *
 * A sharded service carves its persistent storage as one backend file
 * per shard under a single directory (`shard-NNNN.oram`), plus a sealed
 * service manifest. These helpers own the directory lifecycle so every
 * misuse — a path that is not a directory, a directory laid out for a
 * different shard count, a half-written directory — raises a typed
 * FatalError *before* any shard file is created or truncated: a
 * mismatched layout is never silently clobbered.
 * @{ */

/** Backing-file path of shard `shard` under a service directory. */
std::string shardBackendPath(const std::string& dir, u32 shard);

/** Number of `shard-NNNN.oram` files present under `dir` (0 if the
 *  directory does not exist). Fatal if `dir` exists but is no
 *  directory, or if the shard files present are not exactly
 *  shard-0000 .. shard-(K-1) (a torn or foreign layout). */
u32 countShardBackendFiles(const std::string& dir);

/**
 * Create or validate a shard directory for `num_shards` shards.
 *
 *  - absent: the directory is created (parent must exist).
 *  - present with no shard files: accepted as-is.
 *  - present with exactly `num_shards` shard files: accepted; with
 *    `reset`, stale service metadata (MANIFEST, *.ckpt, journal *.wal
 *    segments) is removed so a reinitialized service cannot be resumed
 *    from — or replayed against — the old epoch.
 *  - present with any other shard count, a gap in the shard numbering,
 *    or a non-directory path: typed FatalError, nothing touched.
 */
void prepareShardDirectory(const std::string& dir, u32 num_shards,
                           bool reset);
/** @} */

/** Layout unit for an optional backend (page-ish default when absent). */
inline u64
layoutUnitBytes(const StorageBackend* store)
{
    return store != nullptr ? store->layoutUnitBytes() : u64{8192} * 2;
}

} // namespace froram

#endif // FRORAM_MEM_STORAGE_BACKEND_HPP
