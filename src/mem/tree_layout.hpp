/**
 * @file
 * Mapping from ORAM tree buckets to DRAM physical addresses.
 *
 * Implements the subtree layout of Ren et al. [26] used by the paper
 * (Section 7.1.1): the tree is partitioned into depth-k subtrees, each
 * packed contiguously so that a path access touches one DRAM row region
 * per k levels instead of one per level, achieving near-peak DRAM
 * bandwidth. A naive level-order layout is provided for ablation.
 */
#ifndef FRORAM_MEM_TREE_LAYOUT_HPP
#define FRORAM_MEM_TREE_LAYOUT_HPP

#include <vector>

#include "util/bitops.hpp"
#include "util/common.hpp"

namespace froram {

/** Identifies one bucket: tree level and index within the level. */
struct BucketCoord {
    u32 level;
    u64 index;

    bool
    operator==(const BucketCoord& o) const
    {
        return level == o.level && index == o.index;
    }
};

/**
 * One contiguous byte range of a path, covering one or more consecutive
 * path levels. The subtree layout maps a whole path onto a handful of
 * these runs (one per depth-k subtree crossed), which is what lets the
 * storage gather/prefetch layer fetch a path as a few long sequential
 * streams instead of L+1 scattered bucket reads.
 */
struct PathRun {
    u64 addr = 0;       ///< physical byte address of the run's first byte
    u64 bytes = 0;      ///< run length in bytes
    u32 firstLevel = 0; ///< first path level contained in the run
    u32 numLevels = 0;  ///< consecutive path levels covered
};

/** Abstract bucket -> byte-address mapping. */
class TreeLayout {
  public:
    /**
     * @param levels ORAM tree depth L (levels 0..L inclusive)
     * @param bucket_bytes physical bucket size (padded to bursts)
     */
    TreeLayout(u32 levels, u64 bucket_bytes)
        : levels_(levels), bucketBytes_(bucket_bytes)
    {
    }
    virtual ~TreeLayout() = default;

    /** Physical byte address of the first byte of the given bucket. */
    u64
    addressOf(BucketCoord bucket) const
    {
        return baseAddr_ + relativeAddressOf(bucket);
    }

    /** Bucket address relative to the tree's base. */
    virtual u64 relativeAddressOf(BucketCoord bucket) const = 0;

    /**
     * Place this tree at a byte offset in the physical address space
     * (multiple ORAM trees -- the Recursive baseline -- occupy disjoint
     * regions of the same DRAM).
     */
    void setBaseAddress(u64 base) { baseAddr_ = base; }
    u64 baseAddress() const { return baseAddr_; }

    /** Total footprint in bytes (for sizing the DRAM). */
    virtual u64 footprintBytes() const = 0;

    u32 levels() const { return levels_; }
    u64 bucketBytes() const { return bucketBytes_; }

    /** Buckets along the path from root to `leaf` (level order). */
    std::vector<BucketCoord>
    path(u64 leaf) const
    {
        std::vector<BucketCoord> p;
        p.reserve(levels_ + 1);
        for (u32 l = 0; l <= levels_; ++l)
            p.push_back({l, leaf >> (levels_ - l)});
        return p;
    }

    /**
     * Decompose the path to `leaf` into contiguous byte runs.
     *
     * Fills `runs` (caller-owned, capacity levels+1 covers every layout)
     * in level order and `level_offset[l]` with the byte offset of the
     * level-l bucket from the start of its containing run. Allocation-
     * free: the hot path calls this once per access.
     *
     * The base implementation emits one bucket-sized run per level (no
     * layout can do worse); SubtreeLayout overrides it with one run per
     * depth-k subtree crossed.
     *
     * @return the number of runs written
     */
    virtual u32
    pathRuns(u64 leaf, PathRun* runs, u64* level_offset) const
    {
        for (u32 l = 0; l <= levels_; ++l) {
            runs[l] = {addressOf({l, leaf >> (levels_ - l)}),
                       bucketBytes_, l, 1};
            level_offset[l] = 0;
        }
        return levels_ + 1;
    }

  protected:
    u32 levels_;
    u64 bucketBytes_;
    u64 baseAddr_ = 0;
};

/** Naive breadth-first (level-order) layout: bucket i at heap position. */
class FlatLayout : public TreeLayout {
  public:
    using TreeLayout::TreeLayout;

    u64
    relativeAddressOf(BucketCoord b) const override
    {
        return (((u64{1} << b.level) - 1) + b.index) * bucketBytes_;
    }

    u64
    footprintBytes() const override
    {
        return ((u64{1} << (levels_ + 1)) - 1) * bucketBytes_;
    }
};

/**
 * Subtree-packed layout of [26]: depth-k subtrees stored contiguously.
 * k is chosen so one subtree (2^k - 1 buckets) just fits the given
 * locality unit (typically channels * rowBytes).
 *
 * When `pack_tail` is set, the last super-level's subtrees are truncated
 * to the levels that actually exist, so the footprint is exactly
 * numBuckets * bucketBytes (a padded tail group can otherwise inflate
 * the footprint by up to 2^(k-1)x). The timing plane keeps the historic
 * padded form (pack_tail = false) so simulated DRAM addresses — and
 * every figure reproduction — stay bit-identical; the data plane
 * (BackedTreeStorage bucket placement) packs the tail.
 */
class SubtreeLayout : public TreeLayout {
  public:
    /**
     * @param levels tree depth L
     * @param bucket_bytes physical bucket size
     * @param unit_bytes locality unit to pack a subtree into
     * @param pack_tail truncate the final super-level's subtrees
     */
    SubtreeLayout(u32 levels, u64 bucket_bytes, u64 unit_bytes,
                  bool pack_tail = false);

    u64 relativeAddressOf(BucketCoord b) const override;
    u64 footprintBytes() const override;

    u32 pathRuns(u64 leaf, PathRun* runs,
                 u64* level_offset) const override;

    u32 subtreeDepth() const { return k_; }

  private:
    u32 k_;                        // levels per subtree
    std::vector<u64> groupByteBase_; // byte offset of each super-level
    std::vector<u64> groupStride_;   // subtree bytes per super-level
    std::vector<u32> groupDepth_;    // levels per subtree per super-level
};

} // namespace froram

#endif // FRORAM_MEM_TREE_LAYOUT_HPP
