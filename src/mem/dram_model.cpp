#include "mem/dram_model.hpp"

#include <algorithm>

namespace froram {

DramModel::DramModel(const DramConfig& config)
    : config_(config), stats_("dram")
{
    if (config_.channels == 0 || !isPow2(config_.channels))
        fatal("DRAM channel count must be a nonzero power of two, got ",
              config_.channels);
    if (!isPow2(config_.burstBytes) || !isPow2(config_.rowBytes))
        fatal("DRAM burst/row sizes must be powers of two");
    channels_.resize(config_.channels);
    for (auto& ch : channels_)
        ch.banks.resize(config_.totalBanksPerChannel());
}

DramModel::Decoded
DramModel::decode(u64 addr) const
{
    // Channel interleaving at burst granularity so one bucket stripes
    // across channels (as in Phantom / [26]).
    const u64 burst = addr / config_.burstBytes;
    Decoded d;
    d.channel = static_cast<u32>(burst % config_.channels);
    const u64 eff = (burst / config_.channels) * config_.burstBytes +
                    (addr % config_.burstBytes);
    const u64 row_id = eff / config_.rowBytes;
    d.col = eff % config_.rowBytes;
    d.bank = static_cast<u32>(row_id % config_.totalBanksPerChannel());
    d.row = row_id / config_.totalBanksPerChannel();
    return d;
}

u64
DramModel::issue(const DramRequest& req)
{
    const Decoded d = decode(req.addr);
    Channel& ch = channels_[d.channel];
    Bank& bank = ch.banks[d.bank];
    const DramTiming& t = config_.timing;

    u64 col_cmd_at = std::max(now_, bank.nextColAt);

    if (bank.openRow == static_cast<i64>(d.row)) {
        stats_.inc("rowHits");
    } else {
        u64 act_at = col_cmd_at;
        if (bank.openRow >= 0) {
            // Precharge the open row first; respect tRAS from the last
            // activate and write recovery from the last write burst.
            const u64 pre_at = std::max(
                {col_cmd_at, bank.activatedAt + cyc(t.tRas),
                 bank.lastWriteEnd + cyc(t.tWr)});
            act_at = pre_at + cyc(t.tRp);
            stats_.inc("rowConflicts");
        } else {
            stats_.inc("rowMisses");
        }
        bank.activatedAt = act_at;
        col_cmd_at = act_at + cyc(t.tRcd);
        bank.openRow = static_cast<i64>(d.row);
    }

    // Data bus occupancy: the burst transfers CL after the column command
    // and holds the channel bus for tBurst.
    const u64 data_start = std::max(col_cmd_at + cyc(t.cl), ch.busFreeAt);
    const u64 data_end = data_start + cyc(t.tBurst);
    ch.busFreeAt = data_end;
    // Consecutive column ops to one bank are spaced by tCCD; write
    // recovery (tWR) is charged at the next precharge, not here, so
    // write streams run at full bus rate as on real DDR3.
    bank.nextColAt = col_cmd_at + cyc(t.tCcd);
    if (req.isWrite)
        bank.lastWriteEnd = data_end;

    stats_.inc(req.isWrite ? "writeBursts" : "readBursts");
    stats_.inc("bytes", config_.burstBytes);
    return data_end;
}

u64
DramModel::accessBatch(const std::vector<DramRequest>& requests)
{
    const u64 start = now_;
    u64 done = start;
    for (const auto& req : requests)
        done = std::max(done, issue(req));
    now_ = done;
    stats_.inc("batches");
    stats_.inc("busyPs", done - start);
    return done - start;
}

u64
DramModel::accessSingle(u64 addr, bool is_write)
{
    const u64 start = now_;
    const u64 done = issue({addr, is_write});
    now_ = done;
    stats_.inc("singles");
    stats_.inc("busyPs", done - start);
    return done - start;
}

void
DramModel::idle(u64 ps)
{
    now_ += ps;
}

void
DramModel::saveState(CheckpointWriter& w) const
{
    w.begin(ckpt::kTagDram);
    w.putU64(now_);
    w.putU64(channels_.size());
    for (const Channel& ch : channels_) {
        w.putU64(ch.busFreeAt);
        w.putU64(ch.banks.size());
        for (const Bank& b : ch.banks) {
            w.putU64(static_cast<u64>(b.openRow));
            w.putU64(b.nextColAt);
            w.putU64(b.activatedAt);
            w.putU64(b.lastWriteEnd);
        }
    }
    w.end();
}

void
DramModel::restoreState(CheckpointReader& r)
{
    r.enter(ckpt::kTagDram);
    now_ = r.getU64();
    if (r.getU64() != channels_.size())
        throw CheckpointError(
            "DRAM channel count differs from the checkpointed one");
    for (Channel& ch : channels_) {
        ch.busFreeAt = r.getU64();
        if (r.getU64() != ch.banks.size())
            throw CheckpointError(
                "DRAM bank count differs from the checkpointed one");
        for (Bank& b : ch.banks) {
            b.openRow = static_cast<i64>(r.getU64());
            b.nextColAt = r.getU64();
            b.activatedAt = r.getU64();
            b.lastWriteEnd = r.getU64();
        }
    }
    r.exit();
}

} // namespace froram
