/**
 * @file
 * DDR3-style DRAM geometry and timing configuration.
 *
 * Defaults follow the paper's evaluation (Section 7.1.1): DRAMSim2's
 * default micron DDR3 configuration with 8 banks, 16384 rows and 1024
 * columns per row, 667 MHz DDR clock and a 64-bit bus, i.e. ~10.67 GB/s
 * peak per channel.
 */
#ifndef FRORAM_MEM_DRAM_CONFIG_HPP
#define FRORAM_MEM_DRAM_CONFIG_HPP

#include "util/bitops.hpp"
#include "util/common.hpp"

namespace froram {

/** DRAM timing parameters, in DRAM clock cycles unless noted. */
struct DramTiming {
    u64 tCkPs = 1500; ///< clock period in picoseconds (667 MHz)
    u32 cl = 9;       ///< CAS latency
    u32 tRcd = 9;     ///< RAS-to-CAS delay
    u32 tRp = 9;      ///< row precharge
    u32 tRas = 24;    ///< row active time (ACT -> PRE minimum)
    u32 tBurst = 4;   ///< data bus occupancy of a BL8 burst (DDR)
    u32 tWr = 10;     ///< write recovery
    u32 tCcd = 4;     ///< column-to-column delay
};

/** DRAM organization for one memory system. */
struct DramConfig {
    u32 channels = 2;        ///< independent channels
    u32 ranksPerChannel = 1; ///< ranks (modeled as extra banks)
    u32 banksPerRank = 8;    ///< banks per rank
    u32 rowsPerBank = 16384; ///< rows per bank
    u32 rowBytes = 8192;     ///< row buffer: 1024 columns x 64-bit bus
    u32 busBytes = 8;        ///< data bus width in bytes
    u32 burstBytes = 64;     ///< bytes per BL8 burst (bus transaction unit)
    DramTiming timing{};

    /** Peak bandwidth of the whole memory system in bytes per second. */
    double
    peakBandwidthBytesPerSec() const
    {
        // DDR: two transfers per clock.
        const double clk_hz = 1e12 / static_cast<double>(timing.tCkPs);
        return clk_hz * 2.0 * busBytes * channels;
    }

    u32
    totalBanksPerChannel() const
    {
        return ranksPerChannel * banksPerRank;
    }

    /** Default paper configuration with a given channel count. */
    static DramConfig
    ddr3(u32 num_channels)
    {
        DramConfig c;
        c.channels = num_channels;
        return c;
    }
};

/** A single DRAM transaction (one burst) as seen by the timing model. */
struct DramRequest {
    u64 addr = 0;        ///< physical byte address (burst aligned)
    bool isWrite = false;
};

} // namespace froram

#endif // FRORAM_MEM_DRAM_CONFIG_HPP
