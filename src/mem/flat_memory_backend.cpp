#include "mem/flat_memory_backend.hpp"

#include <algorithm>
#include <cstring>

namespace froram {

u8*
FlatMemoryBackend::chunkFor(u64 chunk_index)
{
    if (chunk_index >= chunks_.size())
        chunks_.resize(std::max(chunk_index + 1, 2 * chunks_.size()));
    auto& chunk = chunks_[chunk_index];
    if (chunk == nullptr) {
        chunk.reset(new u8[kChunkBytes]()); // value-init: zero-filled
        ++materialized_;
    }
    return chunk.get();
}

void
FlatMemoryBackend::read(u64 addr, u8* dst, u64 len)
{
    while (len > 0) {
        const u64 chunk = addr / kChunkBytes;
        const u64 off = addr % kChunkBytes;
        const u64 n = std::min(len, kChunkBytes - off);
        if (chunk >= chunks_.size() || chunks_[chunk] == nullptr)
            std::memset(dst, 0, n);
        else
            std::memcpy(dst, chunks_[chunk].get() + off, n);
        addr += n;
        dst += n;
        len -= n;
    }
}

void
FlatMemoryBackend::write(u64 addr, const u8* src, u64 len)
{
    while (len > 0) {
        const u64 chunk = addr / kChunkBytes;
        const u64 off = addr % kChunkBytes;
        const u64 n = std::min(len, kChunkBytes - off);
        std::memcpy(chunkFor(chunk) + off, src, n);
        addr += n;
        src += n;
        len -= n;
    }
}

u8*
FlatMemoryBackend::view(u64 addr, u64 len)
{
    const u64 chunk = addr / kChunkBytes;
    const u64 off = addr % kChunkBytes;
    if (len > kChunkBytes - off)
        return nullptr; // range straddles a chunk boundary
    return chunkFor(chunk) + off;
}

} // namespace froram
