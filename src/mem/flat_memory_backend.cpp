#include "mem/flat_memory_backend.hpp"

#include <cstring>

namespace froram {

void
FlatMemoryBackend::read(u64 addr, u8* dst, u64 len)
{
    while (len > 0) {
        const u64 chunk = addr / kChunkBytes;
        const u64 off = addr % kChunkBytes;
        const u64 n = std::min(len, kChunkBytes - off);
        auto it = chunks_.find(chunk);
        if (it == chunks_.end())
            std::memset(dst, 0, n);
        else
            std::memcpy(dst, it->second.data() + off, n);
        addr += n;
        dst += n;
        len -= n;
    }
}

void
FlatMemoryBackend::write(u64 addr, const u8* src, u64 len)
{
    while (len > 0) {
        const u64 chunk = addr / kChunkBytes;
        const u64 off = addr % kChunkBytes;
        const u64 n = std::min(len, kChunkBytes - off);
        auto& bytes = chunks_[chunk];
        if (bytes.empty())
            bytes.assign(kChunkBytes, 0);
        std::memcpy(bytes.data() + off, src, n);
        addr += n;
        src += n;
        len -= n;
    }
}

} // namespace froram
