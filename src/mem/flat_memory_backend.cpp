#include "mem/flat_memory_backend.hpp"

#include <algorithm>
#include <cstring>

namespace froram {

u8*
FlatMemoryBackend::chunkFor(u64 chunk_index)
{
    if (chunk_index >= chunks_.size())
        chunks_.resize(std::max(chunk_index + 1, 2 * chunks_.size()));
    auto& chunk = chunks_[chunk_index];
    if (chunk == nullptr) {
        chunk.reset(new u8[kChunkBytes]()); // value-init: zero-filled
        ++materialized_;
    }
    return chunk.get();
}

void
FlatMemoryBackend::read(u64 addr, u8* dst, u64 len)
{
    while (len > 0) {
        const u64 chunk = addr / kChunkBytes;
        const u64 off = addr % kChunkBytes;
        const u64 n = std::min(len, kChunkBytes - off);
        if (chunk >= chunks_.size() || chunks_[chunk] == nullptr)
            std::memset(dst, 0, n);
        else
            std::memcpy(dst, chunks_[chunk].get() + off, n);
        addr += n;
        dst += n;
        len -= n;
    }
}

void
FlatMemoryBackend::write(u64 addr, const u8* src, u64 len)
{
    while (len > 0) {
        const u64 chunk = addr / kChunkBytes;
        const u64 off = addr % kChunkBytes;
        const u64 n = std::min(len, kChunkBytes - off);
        std::memcpy(chunkFor(chunk) + off, src, n);
        addr += n;
        src += n;
        len -= n;
    }
}

void
FlatMemoryBackend::prefetch(u64 addr, u64 len)
{
    // Advisory cache warming of a materialized range (never
    // materialize — a prefetch must not change what bytesTouched()
    // reports). The gather runs a path decomposes into are contiguous,
    // so the hardware prefetcher streams them fine once started; what
    // software prefetch buys is covering its startup gap — the chunk
    // indirection and the first lines of the run. Touching every line
    // of a multi-KB run costs more than it saves, so cap at the head.
    constexpr u64 kHeadBytes = 256;
    while (len > 0) {
        const u64 chunk = addr / kChunkBytes;
        const u64 off = addr % kChunkBytes;
        const u64 n = std::min(len, kChunkBytes - off);
        if (chunk < chunks_.size() && chunks_[chunk] != nullptr) {
            const u8* p = chunks_[chunk].get() + off;
            for (u64 i = 0; i < std::min(n, kHeadBytes); i += 64)
                __builtin_prefetch(p + i, /*rw=*/0, /*locality=*/2);
        }
        addr += n;
        len -= n;
    }
}

u8*
FlatMemoryBackend::view(u64 addr, u64 len)
{
    const u64 chunk = addr / kChunkBytes;
    const u64 off = addr % kChunkBytes;
    if (len > kChunkBytes - off)
        return nullptr; // range straddles a chunk boundary
    return chunkFor(chunk) + off;
}

} // namespace froram
