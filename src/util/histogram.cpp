#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>

namespace froram {

double
Histogram::chiSquareUniform() const
{
    if (total_ == 0 || bins_.empty())
        return 0.0;
    const double expected =
        static_cast<double>(total_) / static_cast<double>(bins_.size());
    double chi2 = 0.0;
    for (u64 c : bins_) {
        const double d = static_cast<double>(c) - expected;
        chi2 += d * d / expected;
    }
    return chi2;
}

double
Histogram::chiSquareTwoSample(const Histogram& other) const
{
    FRORAM_ASSERT(bins_.size() == other.bins_.size(),
                  "histograms must share binning");
    const double n1 = static_cast<double>(total_);
    const double n2 = static_cast<double>(other.total_);
    if (n1 == 0 || n2 == 0)
        return 0.0;
    // Standard two-sample chi-square with scaling constants K1, K2.
    const double k1 = std::sqrt(n2 / n1);
    const double k2 = std::sqrt(n1 / n2);
    double chi2 = 0.0;
    for (u64 i = 0; i < bins_.size(); ++i) {
        const double a = static_cast<double>(bins_[i]);
        const double b = static_cast<double>(other.bins_[i]);
        if (a + b == 0)
            continue;
        const double d = k1 * a - k2 * b;
        chi2 += d * d / (a + b);
    }
    return chi2;
}

double
Histogram::ksDistance(const Histogram& other) const
{
    FRORAM_ASSERT(bins_.size() == other.bins_.size(),
                  "histograms must share binning");
    if (total_ == 0 || other.total_ == 0)
        return 0.0;
    double cdf_a = 0.0, cdf_b = 0.0, max_d = 0.0;
    for (u64 i = 0; i < bins_.size(); ++i) {
        cdf_a += static_cast<double>(bins_[i]) / total_;
        cdf_b += static_cast<double>(other.bins_[i]) / other.total_;
        max_d = std::max(max_d, std::abs(cdf_a - cdf_b));
    }
    return max_d;
}

double
normalQuantile(double p)
{
    // Acklam's rational approximation to the inverse normal CDF.
    FRORAM_ASSERT(p > 0.0 && p < 1.0, "quantile domain");
    static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                               -2.759285104469687e+02, 1.383577518672690e+02,
                               -3.066479806614716e+01, 2.506628277459239e+00};
    static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                               -1.556989798598866e+02, 6.680131188771972e+01,
                               -1.328068155288572e+01};
    static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                               -2.400758277161838e+00, -2.549732539343734e+00,
                               4.374664141464968e+00,  2.938163982698783e+00};
    static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                               2.445134137142996e+00, 3.754408661907416e+00};
    const double plow = 0.02425;
    if (p < plow) {
        const double q = std::sqrt(-2 * std::log(p));
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
                c[5]) /
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
    }
    if (p > 1 - plow) {
        const double q = std::sqrt(-2 * std::log(1 - p));
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) *
                     q +
                 c[5]) /
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
    }
    const double q = p - 0.5;
    const double r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
}

double
chiSquareCritical(double dof, double alpha)
{
    // Wilson-Hilferty: chi2_q ~ dof * (1 - 2/(9 dof) + z_q sqrt(2/(9 dof)))^3
    const double z = normalQuantile(1.0 - alpha);
    const double t = 2.0 / (9.0 * dof);
    const double base = 1.0 - t + z * std::sqrt(t);
    return dof * base * base * base;
}

} // namespace froram
