/**
 * @file
 * Histograms and the statistical tests used by the obliviousness checks.
 *
 * The ORAM security argument says the adversary-visible leaf sequence is
 * uniform and independent of the program. The test suite verifies this
 * empirically with a chi-square uniformity test and a two-sample
 * Kolmogorov-Smirnov-style distance on observed traces.
 */
#ifndef FRORAM_UTIL_HISTOGRAM_HPP
#define FRORAM_UTIL_HISTOGRAM_HPP

#include <vector>

#include "util/common.hpp"

namespace froram {

/** Fixed-bin histogram over [0, numBins). */
class Histogram {
  public:
    explicit Histogram(u64 num_bins) : bins_(num_bins, 0), total_(0) {}

    /** Count one observation of `value` (must be < numBins()). */
    void
    add(u64 value)
    {
        FRORAM_ASSERT(value < bins_.size(), "histogram value out of range");
        ++bins_[value];
        ++total_;
    }

    u64 numBins() const { return bins_.size(); }
    u64 total() const { return total_; }
    u64 count(u64 bin) const { return bins_.at(bin); }
    const std::vector<u64>& bins() const { return bins_; }

    /**
     * Chi-square statistic against the uniform distribution.
     * Degrees of freedom = numBins() - 1.
     */
    double chiSquareUniform() const;

    /**
     * Two-sample chi-square statistic between this histogram and `other`
     * (same binning required). Low values mean the two empirical
     * distributions are statistically indistinguishable.
     */
    double chiSquareTwoSample(const Histogram& other) const;

    /**
     * Maximum CDF distance between this and `other` (two-sample KS
     * statistic, un-normalized by sample size).
     */
    double ksDistance(const Histogram& other) const;

  private:
    std::vector<u64> bins_;
    u64 total_;
};

/**
 * Approximate upper critical value of the chi-square distribution with
 * `dof` degrees of freedom at significance alpha using the Wilson-Hilferty
 * normal approximation. Good to a few percent for dof >= 10, which is all
 * the obliviousness tests need.
 */
double chiSquareCritical(double dof, double alpha);

/** Standard normal quantile (Acklam's rational approximation). */
double normalQuantile(double p);

} // namespace froram

#endif // FRORAM_UTIL_HISTOGRAM_HPP
