/**
 * @file
 * Lightweight named-counter statistics registry.
 *
 * Every simulator component owns a StatSet; counters are registered by name
 * and can be dumped as a table or merged. This mirrors the role of the gem5
 * stats package at a fraction of the complexity.
 */
#ifndef FRORAM_UTIL_STATS_HPP
#define FRORAM_UTIL_STATS_HPP

#include <map>
#include <string>
#include <vector>

#include "util/common.hpp"

namespace froram {

/** A named group of integer counters and derived averages. */
class StatSet {
  public:
    explicit StatSet(std::string name = "") : name_(std::move(name)) {}

    /** Add delta to counter `key` (creating it at zero if absent). */
    void
    inc(const std::string& key, u64 delta = 1)
    {
        counters_[key] += delta;
    }

    /** Set counter `key` to value. */
    void
    set(const std::string& key, u64 value)
    {
        counters_[key] = value;
    }

    /** Current value of `key` (0 if never touched). */
    u64
    get(const std::string& key) const
    {
        auto it = counters_.find(key);
        return it == counters_.end() ? 0 : it->second;
    }

    /** num/denom as double; 0 if denom counter is 0. */
    double
    ratio(const std::string& num, const std::string& denom) const
    {
        u64 d = get(denom);
        return d == 0 ? 0.0 : static_cast<double>(get(num)) / d;
    }

    /** Merge all counters of `other` into this set (summing). */
    void
    merge(const StatSet& other)
    {
        for (const auto& [k, v] : other.counters_)
            counters_[k] += v;
    }

    /** Reset every counter to zero. */
    void
    clear()
    {
        counters_.clear();
    }

    const std::string& name() const { return name_; }
    const std::map<std::string, u64>& counters() const { return counters_; }

    /** Render as "name.key = value" lines. */
    std::string toString() const;

  private:
    std::string name_;
    std::map<std::string, u64> counters_;
};

} // namespace froram

#endif // FRORAM_UTIL_STATS_HPP
