/**
 * @file
 * Small bit-manipulation helpers shared by the ORAM geometry and DRAM
 * address-mapping code.
 */
#ifndef FRORAM_UTIL_BITOPS_HPP
#define FRORAM_UTIL_BITOPS_HPP

#include "util/common.hpp"

namespace froram {

/** floor(log2(x)); x must be nonzero. */
constexpr u32
log2Floor(u64 x)
{
#if defined(__GNUC__) || defined(__clang__)
    return 63u - static_cast<u32>(__builtin_clzll(x));
#else
    u32 r = 0;
    while (x >>= 1)
        ++r;
    return r;
#endif
}

/** ceil(log2(x)); x must be nonzero. log2Ceil(1) == 0. */
constexpr u32
log2Ceil(u64 x)
{
    return x <= 1 ? 0u : log2Floor(x - 1) + 1;
}

/** True iff x is a power of two (and nonzero). */
constexpr bool
isPow2(u64 x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** Round x up to the next multiple of align (align need not be pow2). */
constexpr u64
roundUp(u64 x, u64 align)
{
    return align == 0 ? x : ((x + align - 1) / align) * align;
}

/** Extract bits [lo, lo+width) of x. */
constexpr u64
bits(u64 x, u32 lo, u32 width)
{
    return width >= 64 ? (x >> lo) : ((x >> lo) & ((u64{1} << width) - 1));
}

/** ceil(a / b) for integers. */
constexpr u64
divCeil(u64 a, u64 b)
{
    return (a + b - 1) / b;
}

/** Number of set bits in x. */
constexpr u32
popcount64(u64 x)
{
#if defined(__GNUC__) || defined(__clang__)
    return static_cast<u32>(__builtin_popcountll(x));
#else
    u32 n = 0;
    for (; x != 0; x &= x - 1)
        ++n;
    return n;
#endif
}

/**
 * splitmix64 finalizer (Steele/Lea/Flood): the shared bit-mixing step
 * behind seed expansion, the fast simulation cipher and hash probing.
 */
constexpr u64
splitmix64Mix(u64 z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Store the low `nbytes` bytes of `v` little-endian at `p`. */
inline void
storeLe(u8* p, u64 v, u64 nbytes = 8)
{
    for (u64 i = 0; i < nbytes; ++i)
        p[i] = static_cast<u8>(v >> (8 * i));
}

/** Load `nbytes` little-endian bytes from `p`. */
inline u64
loadLe(const u8* p, u64 nbytes = 8)
{
    u64 v = 0;
    for (u64 i = 0; i < nbytes; ++i)
        v |= static_cast<u64>(p[i]) << (8 * i);
    return v;
}

} // namespace froram

#endif // FRORAM_UTIL_BITOPS_HPP
