/**
 * @file
 * CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320).
 *
 * Used by the request journal to frame records: a CRC is a *crash*
 * detector, not an *adversary* detector — it catches torn writes, bit
 * rot and truncation with overwhelming probability, but anyone who can
 * rewrite journal bytes can recompute it. Authenticated state lives in
 * the sealed checkpoints (keyed MAC); the journal trust model is
 * documented in README "Fault model & recovery".
 */
#ifndef FRORAM_UTIL_CRC32_HPP
#define FRORAM_UTIL_CRC32_HPP

#include "util/common.hpp"

namespace froram {

/**
 * CRC-32 of `data[0, len)`. Chain incrementally by passing the previous
 * return value as `seed` (the init/xorout folding is handled inside, so
 * crc32(b, n) == crc32(b + k, n - k, crc32(b, k)) for any split).
 */
u32 crc32(const u8* data, u64 len, u32 seed = 0);

} // namespace froram

#endif // FRORAM_UTIL_CRC32_HPP
