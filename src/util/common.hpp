/**
 * @file
 * Common fixed-width types and error-reporting helpers used across the
 * Freecursive ORAM library.
 *
 * Error-handling convention (gem5-style):
 *  - panic():  an internal invariant was violated, i.e. a library bug.
 *  - fatal():  the user supplied an impossible configuration.
 * Both throw (rather than abort) so tests can assert on misuse.
 */
#ifndef FRORAM_UTIL_COMMON_HPP
#define FRORAM_UTIL_COMMON_HPP

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

namespace froram {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i64 = std::int64_t;

/** Exception thrown by panic(): an internal library invariant broke. */
class PanicError : public std::logic_error {
  public:
    explicit PanicError(const std::string& what) : std::logic_error(what) {}
};

/** Exception thrown by fatal(): the caller supplied a bad configuration. */
class FatalError : public std::runtime_error {
  public:
    explicit FatalError(const std::string& what) : std::runtime_error(what) {}
};

/**
 * Exception thrown by the integrity machinery (PMMAC / Merkle) when
 * tampering is detected. Mirrors the "integrity exception delivered to the
 * processor" in Section 2 of the paper.
 */
class IntegrityViolation : public std::runtime_error {
  public:
    explicit IntegrityViolation(const std::string& what)
        : std::runtime_error(what) {}
};

/** Alias emphasizing the error-hierarchy role next to StorageError. */
using IntegrityError = IntegrityViolation;

/**
 * Exception thrown when the untrusted storage medium misbehaves at
 * runtime: an I/O error, a torn write, a failed durability barrier. A
 * *transient* error may succeed if the same operation is reissued
 * (RetryingBackend absorbs these below the ORAM engine, where a raw
 * read/write is trivially idempotent); a non-transient error — or a
 * transient one that survived the retry budget — propagates up through
 * TreeStorage and the ORAM engine, fail-stops the owning OramSystem,
 * and surfaces as a typed per-request failure. Distinct from
 * IntegrityViolation (the data came back, but it was tampered with)
 * and from FatalError (the configuration was never viable).
 */
class StorageError : public std::runtime_error {
  public:
    explicit StorageError(const std::string& what, bool transient = false)
        : std::runtime_error(what), transient_(transient) {}

    /** True when reissuing the failed operation may succeed. */
    bool transient() const { return transient_; }

  private:
    bool transient_ = false;
};

namespace detail {

inline void
formatInto(std::ostringstream& os)
{
}

template <typename T, typename... Rest>
void
formatInto(std::ostringstream& os, const T& first, const Rest&... rest)
{
    os << first;
    formatInto(os, rest...);
}

} // namespace detail

/** Report an internal bug: throws PanicError with the streamed message. */
template <typename... Args>
[[noreturn]] void
panic(const Args&... args)
{
    std::ostringstream os;
    os << "panic: ";
    detail::formatInto(os, args...);
    throw PanicError(os.str());
}

/** Report a user configuration error: throws FatalError. */
template <typename... Args>
[[noreturn]] void
fatal(const Args&... args)
{
    std::ostringstream os;
    os << "fatal: ";
    detail::formatInto(os, args...);
    throw FatalError(os.str());
}

/** panic() unless the given invariant holds. */
#define FRORAM_ASSERT(cond, ...)                                            \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::froram::panic("assertion failed: ", #cond, " ", __VA_ARGS__); \
        }                                                                   \
    } while (0)

} // namespace froram

#endif // FRORAM_UTIL_COMMON_HPP
