#include "util/stats.hpp"

#include <sstream>

namespace froram {

std::string
StatSet::toString() const
{
    std::ostringstream os;
    for (const auto& [k, v] : counters_) {
        if (!name_.empty())
            os << name_ << '.';
        os << k << " = " << v << '\n';
    }
    return os.str();
}

} // namespace froram
