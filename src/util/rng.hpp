/**
 * @file
 * Deterministic pseudo-random number generation for simulations.
 *
 * All randomness in the library flows through Xoshiro256 instances seeded
 * explicitly, so every simulation and test is reproducible bit-for-bit.
 * (Cryptographic randomness -- leaf remapping in deployments -- would come
 * from the PRF in crypto/; the simulator's "fresh random leaf" uses this
 * PRNG, which is statistically indistinguishable for the experiments.)
 */
#ifndef FRORAM_UTIL_RNG_HPP
#define FRORAM_UTIL_RNG_HPP

#include "util/bitops.hpp"
#include "util/common.hpp"

namespace froram {

/**
 * xoshiro256** 1.0 by Blackman & Vigna (public domain algorithm),
 * reimplemented here. Fast, 256-bit state, passes BigCrush.
 */
class Xoshiro256 {
  public:
    using result_type = u64;

    /** Construct from a 64-bit seed, expanded with splitmix64. */
    explicit Xoshiro256(u64 seed = 0x9e3779b97f4a7c15ULL)
    {
        u64 x = seed;
        for (auto& s : state_) {
            // splitmix64 step
            x += 0x9e3779b97f4a7c15ULL;
            s = splitmix64Mix(x);
        }
    }

    /** Next 64 random bits. */
    u64
    next()
    {
        const u64 result = rotl(state_[1] * 5, 7) * 9;
        const u64 t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    u64 operator()() { return next(); }

    static constexpr u64 min() { return 0; }
    static constexpr u64 max() { return ~u64{0}; }

    /** Uniform integer in [0, bound); bound must be nonzero. */
    u64
    below(u64 bound)
    {
        // Multiply-shift rejection-free mapping (Lemire); bias is
        // negligible for simulation purposes (< 2^-64 * bound).
        return static_cast<u64>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability p. */
    bool chance(double p) { return uniform() < p; }

    /** @name State capture (checkpoint/restore)
     *
     * The generator's 256-bit state, exposed so a restored simulation
     * resumes the exact random sequence of the checkpointed one.
     * @{ */
    void
    saveState(u64 out[4]) const
    {
        for (int i = 0; i < 4; ++i)
            out[i] = state_[i];
    }

    void
    restoreState(const u64 in[4])
    {
        for (int i = 0; i < 4; ++i)
            state_[i] = in[i];
    }
    /** @} */

  private:
    static constexpr u64
    rotl(u64 x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    u64 state_[4];
};

} // namespace froram

#endif // FRORAM_UTIL_RNG_HPP
