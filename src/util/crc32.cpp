#include "util/crc32.hpp"

namespace froram {
namespace {

struct Crc32Table {
    u32 t[256];

    Crc32Table()
    {
        for (u32 i = 0; i < 256; ++i) {
            u32 c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
    }
};

const Crc32Table kTable;

} // namespace

u32
crc32(const u8* data, u64 len, u32 seed)
{
    u32 c = seed ^ 0xFFFFFFFFu;
    for (u64 i = 0; i < len; ++i)
        c = kTable.t[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

} // namespace froram
