/**
 * @file
 * Plain-text table / CSV printer used by the benchmark harnesses to emit
 * the rows and series of each paper table and figure.
 */
#ifndef FRORAM_UTIL_TABLE_HPP
#define FRORAM_UTIL_TABLE_HPP

#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "util/common.hpp"

namespace froram {

/** Column-aligned table with a header row, renderable as text or CSV. */
class TextTable {
  public:
    explicit TextTable(std::vector<std::string> header)
        : header_(std::move(header))
    {
    }

    /** Begin a new row. */
    void
    newRow()
    {
        rows_.emplace_back();
    }

    /** Append a pre-formatted cell to the current row. */
    void
    cell(const std::string& value)
    {
        FRORAM_ASSERT(!rows_.empty(), "call newRow() first");
        rows_.back().push_back(value);
    }

    /** Append a numeric cell with fixed precision. */
    void
    cell(double value, int precision = 2)
    {
        std::ostringstream os;
        os << std::fixed << std::setprecision(precision) << value;
        cell(os.str());
    }

    void cell(u64 value) { cell(std::to_string(value)); }
    void cell(int value) { cell(std::to_string(value)); }

    /** Render aligned text table. */
    void print(std::ostream& os) const;

    /** Render as CSV (comma separated, header first). */
    void printCsv(std::ostream& os) const;

    size_t numRows() const { return rows_.size(); }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace froram

#endif // FRORAM_UTIL_TABLE_HPP
