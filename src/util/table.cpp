#include "util/table.hpp"

#include <algorithm>

namespace froram {

void
TextTable::print(std::ostream& os) const
{
    std::vector<size_t> widths(header_.size(), 0);
    for (size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto& row : rows_)
        for (size_t c = 0; c < row.size() && c < widths.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string>& row) {
        for (size_t c = 0; c < widths.size(); ++c) {
            const std::string& v = c < row.size() ? row[c] : std::string{};
            os << "  " << std::left << std::setw(static_cast<int>(widths[c]))
               << v;
        }
        os << '\n';
    };

    emit_row(header_);
    size_t total = 0;
    for (size_t w : widths)
        total += w + 2;
    os << std::string(total, '-') << '\n';
    for (const auto& row : rows_)
        emit_row(row);
}

void
TextTable::printCsv(std::ostream& os) const
{
    auto emit = [&](const std::vector<std::string>& row) {
        for (size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ',';
            os << row[c];
        }
        os << '\n';
    };
    emit(header_);
    for (const auto& row : rows_)
        emit(row);
}

} // namespace froram
