/**
 * @file
 * Table 2 reproduction: ORAM tree (Backend path) latency in processor
 * cycles by DRAM channel count, for the Table 1 configuration (4 GB
 * ORAM, 64 B blocks, Z = 4, 1.3 GHz core).
 *
 * Paper values: 2147 / 1208 / 697 / 463 cycles for 1 / 2 / 4 / 8
 * channels; scaling is increasingly sub-linear due to channel conflicts.
 * The insecure-DRAM single access (~58 cycles) is printed for reference.
 */
#include "bench_common.hpp"
#include "util/rng.hpp"

using namespace froram;

int
main(int argc, char** argv)
{
    const auto opts = bench::BenchOptions::parse(argc, argv);
    const u64 accesses = opts.scaled(600);
    const double paper[] = {2147, 1208, 697, 463};

    TextTable table({"channels", "oram_tree_latency_cycles",
                     "paper_cycles", "row_hit_pct", "insecure_cycles"});
    int row = 0;
    for (u32 ch : {1u, 2u, 4u, 8u}) {
        OramSystemConfig cfg;
        cfg.capacityBytes = u64{4} << 30;
        cfg.dramChannels = ch;
        cfg.storage = StorageMode::Null;
        OramSystem sys(SchemeId::PlbCompressed, cfg);

        Xoshiro256 rng(1);
        u64 cycles = 0, tree_accesses = 0;
        for (u64 i = 0; i < accesses; ++i) {
            const auto r = sys.frontend().access(
                rng.below(cfg.capacityBytes / 64), false);
            cycles += r.cycles;
            tree_accesses += r.backendAccesses;
        }
        const auto& ds = sys.dram().stats();
        const double hits = static_cast<double>(ds.get("rowHits"));
        const double all = hits + ds.get("rowMisses") +
                           ds.get("rowConflicts");

        InsecureMemory imem(ch, LatencyModel{});
        Xoshiro256 rng2(2);
        u64 icycles = 0;
        for (int i = 0; i < 2000; ++i)
            icycles += imem.accessCycles(
                rng2.below(u64{4} << 30) & ~63ULL, i % 3 == 0);

        table.newRow();
        table.cell(u64{ch});
        table.cell(static_cast<double>(cycles) / tree_accesses, 0);
        table.cell(paper[row++], 0);
        table.cell(all == 0 ? 0.0 : 100.0 * hits / all, 1);
        table.cell(static_cast<double>(icycles) / 2000, 1);
    }
    bench::emit(opts, table,
                "Table 2: ORAM access latency by DRAM channel count");
    return 0;
}
