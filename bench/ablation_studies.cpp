/**
 * @file
 * Ablation benches for the design choices DESIGN.md calls out (beyond
 * the paper's figures):
 *
 *  1. Subtree layout vs naive flat layout ([26]'s optimization): DRAM
 *     row-hit rate and path latency.
 *  2. Compressed PosMap beta sweep: group-remap overhead vs fan-out
 *     (the Section 5.3 worst-case X/2^beta trade-off).
 *  3. PLB contribution in isolation: walk depth with/without warm PLB.
 */
#include "bench_common.hpp"
#include "util/rng.hpp"

using namespace froram;
using namespace froram::bench;

namespace {

/** Path latency with a given layout over one DRAM model. */
double
pathLatency(bool subtree, u32 channels, u64 accesses)
{
    const OramParams p =
        OramParams::forCapacity(u64{4} << 30, 64, 4);
    DramModel dram(DramConfig::ddr3(channels));
    std::unique_ptr<TreeLayout> layout;
    const u64 unit = u64{dram.config().rowBytes} * channels;
    if (subtree)
        layout = std::make_unique<SubtreeLayout>(
            p.levels, p.bucketPhysBytes(), unit);
    else
        layout = std::make_unique<FlatLayout>(p.levels,
                                              p.bucketPhysBytes());
    Xoshiro256 rng(1);
    u64 total_ps = 0;
    const u64 bursts = divCeil(p.bucketPhysBytes(), 64);
    for (u64 i = 0; i < accesses; ++i) {
        const Leaf leaf = rng.below(p.numLeaves());
        std::vector<DramRequest> reqs;
        for (const auto& c : layout->path(leaf))
            for (u64 b = 0; b < bursts; ++b)
                reqs.push_back({layout->addressOf(c) + b * 64, false});
        total_ps += dram.accessBatch(reqs);
    }
    return static_cast<double>(total_ps) / accesses / 1000.0; // ns
}

} // namespace

int
main(int argc, char** argv)
{
    const auto opts = BenchOptions::parse(argc, argv);
    const u64 accesses = opts.scaled(400);

    // 1. Subtree vs flat layout.
    TextTable layout_table(
        {"channels", "flat_path_ns", "subtree_path_ns", "speedup"});
    for (u32 ch : {1u, 2u, 4u}) {
        const double flat = pathLatency(false, ch, accesses);
        const double sub = pathLatency(true, ch, accesses);
        layout_table.newRow();
        layout_table.cell(u64{ch});
        layout_table.cell(flat, 1);
        layout_table.cell(sub, 1);
        layout_table.cell(flat / sub, 2);
    }
    emit(opts, layout_table,
         "Ablation 1: subtree layout [26] vs naive flat layout "
         "(path read latency)");

    // 2. Compressed-PosMap beta sweep: worst-case single-hot-block
    // access pattern maximizes group remaps (Section 5.2.2).
    TextTable beta_table({"beta", "X", "accesses_per_request",
                          "group_remaps", "worst_case_pct"});
    for (u32 beta : {4u, 8u, 10u, 14u}) {
        UnifiedFrontendConfig c;
        c.numBlocks = 1 << 16;
        c.format = PosMapFormat::Kind::Compressed;
        c.beta = beta;
        c.plb.capacityBytes = 8 * 1024;
        c.onChipTargetBytes = 1024;
        c.storage = StorageMode::Meta;
        UnifiedFrontend fe(c, nullptr, nullptr);
        const u64 reqs = opts.scaled(40000);
        for (u64 i = 0; i < reqs; ++i)
            fe.access(42, false); // hottest-possible block
        beta_table.newRow();
        beta_table.cell(u64{beta});
        beta_table.cell(u64{fe.format().x()});
        beta_table.cell(static_cast<double>(
                            fe.stats().get("backendAccesses")) /
                            reqs,
                        3);
        beta_table.cell(fe.stats().get("groupRemaps"));
        beta_table.cell(100.0 * fe.format().x() /
                            static_cast<double>(u64{1} << beta),
                        2);
    }
    emit(opts, beta_table,
         "Ablation 2: compressed PosMap IC width (paper: X/2^beta = "
         ".2% worst-case remap overhead at X=32, beta=14)");

    // 3. PLB contribution: average walk depth cold vs warm.
    TextTable plb_table({"plb_KB", "avg_backend_accesses_warm",
                         "plb_hit_rate_pct"});
    for (u64 kb : {2, 8, 64}) {
        OramSystemConfig cfg;
        cfg.capacityBytes = u64{1} << 30;
        cfg.plbBytes = kb * 1024;
        cfg.storage = StorageMode::Null;
        OramSystem sys(SchemeId::PlbCompressed, cfg);
        Xoshiro256 rng(9);
        const u64 n = cfg.capacityBytes / 64;
        // Warm on a 2 MB window, then measure on the same window.
        auto touch = [&](u64 count) {
            u64 acc0 = sys.frontend().stats().get("backendAccesses");
            for (u64 i = 0; i < count; ++i)
                sys.frontend().access(rng.below(n) % (1 << 15), false);
            return sys.frontend().stats().get("backendAccesses") - acc0;
        };
        touch(opts.scaled(20000));
        const u64 measured = opts.scaled(20000);
        const u64 backend = touch(measured);
        const auto& ps =
            static_cast<UnifiedFrontend&>(sys.frontend()).plb().stats();
        const double hits = static_cast<double>(ps.get("hits"));
        const double misses = static_cast<double>(ps.get("misses"));
        plb_table.newRow();
        plb_table.cell(u64{kb});
        plb_table.cell(static_cast<double>(backend) / measured, 3);
        plb_table.cell(hits + misses == 0
                           ? 0.0
                           : 100.0 * hits / (hits + misses),
                       1);
    }
    emit(opts, plb_table,
         "Ablation 3: PLB capacity vs warm walk depth (1 GB ORAM, "
         "2 MB working set)");
    return 0;
}
