/**
 * @file
 * Figure 5 reproduction: PLB design space. Runtime of PC_X32 with a
 * direct-mapped PLB of 8/32/64/128 KB per SPEC-proxy benchmark,
 * normalized to the 8 KB point. Also reports the Section 7.1.3
 * associativity observation (fully-assoc <= ~10% better than
 * direct-mapped at fixed capacity) as a secondary table.
 *
 * Expected shape (paper): most benchmarks gain <= 10% from bigger PLBs;
 * bzip2 and mcf gain strongly (67% / 49% at 128 KB); 64 -> 128 KB buys
 * only ~2.7% on average.
 */
#include "bench_common.hpp"

using namespace froram;
using namespace froram::bench;

int
main(int argc, char** argv)
{
    const auto opts = BenchOptions::parse(argc, argv);
    const u64 refs = opts.scaled(250000);
    const u64 warmup = opts.scaled(120000);
    const u64 plb_sizes[] = {8, 32, 64, 128};

    OramSystemConfig cfg;
    cfg.capacityBytes = u64{4} << 30;
    cfg.dramChannels = 2;
    cfg.storage = StorageMode::Null;

    TextTable table(
        {"bench", "plb8K", "plb32K", "plb64K", "plb128K"});
    std::vector<double> norm64, norm128;
    for (const auto& spec : specSuite()) {
        double base_cycles = 0;
        table.newRow();
        table.cell(spec.name);
        std::vector<double> cyc;
        for (u64 kb : plb_sizes) {
            cfg.plbBytes = kb * 1024;
            const auto p = runOnOram(SchemeId::PlbCompressed, cfg, spec,
                                     refs, warmup, 11);
            cyc.push_back(static_cast<double>(p.cycles));
        }
        base_cycles = cyc[0];
        for (double c : cyc)
            table.cell(c / base_cycles, 3);
        norm64.push_back(cyc[2] / base_cycles);
        norm128.push_back(cyc[3] / base_cycles);
    }
    emit(opts, table,
         "Figure 5: runtime vs direct-mapped PLB capacity, normalized "
         "to 8 KB");

    std::cout << "\n64K->128K average improvement: "
              << (1.0 - geomean(norm128) / geomean(norm64)) * 100.0
              << "%  (paper: ~2.7%)\n";

    // Section 7.1.3 associativity observation at fixed 64 KB capacity.
    TextTable assoc({"bench", "direct_mapped", "w4", "fully_assoc"});
    cfg.plbBytes = 64 * 1024;
    for (const auto& spec : {specByName("bzip2"), specByName("mcf"),
                             specByName("gcc")}) {
        assoc.newRow();
        assoc.cell(spec.name);
        double dm = 0;
        for (u32 ways : {1u, 4u, 1024u}) {
            cfg.plbWays = ways;
            const auto p = runOnOram(SchemeId::PlbCompressed, cfg, spec,
                                     refs / 2, warmup, 11);
            if (ways == 1)
                dm = static_cast<double>(p.cycles);
            assoc.cell(static_cast<double>(p.cycles) / dm, 3);
        }
        cfg.plbWays = 1;
    }
    emit(opts, assoc,
         "Section 7.1.3: PLB associativity at 64 KB (normalized to "
         "direct-mapped; paper: fully-assoc within ~10%)");
    return 0;
}
