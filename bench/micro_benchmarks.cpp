/**
 * @file
 * google-benchmark micro-benchmarks for the substrate primitives:
 * AES-128, SHA3-224, PRF leaf derivation, bucket codec, stash eviction,
 * PLB lookups, DRAM path batches, and one full frontend access per
 * scheme. These support Table 1's latency parameters and give a
 * performance baseline for the simulator itself.
 */
#include <benchmark/benchmark.h>

#include "core/unified_frontend.hpp"
#include "crypto/prf.hpp"
#include "crypto/stream_cipher.hpp"
#include "mem/dram_model.hpp"
#include "oram/backend.hpp"
#include "util/rng.hpp"

namespace froram {
namespace {

void
BM_Aes128Block(benchmark::State& state)
{
    u8 key[16] = {1}, buf[16] = {2};
    Aes128 aes(key);
    for (auto _ : state) {
        aes.encryptBlock(buf, buf);
        benchmark::DoNotOptimize(buf);
    }
    state.SetBytesProcessed(
        static_cast<i64>(state.iterations()) * 16);
}
BENCHMARK(BM_Aes128Block);

void
BM_Sha3_224(benchmark::State& state)
{
    std::vector<u8> msg(static_cast<size_t>(state.range(0)), 0xab);
    for (auto _ : state) {
        auto d = Sha3_224::hash(msg.data(), msg.size());
        benchmark::DoNotOptimize(d);
    }
    state.SetBytesProcessed(static_cast<i64>(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_Sha3_224)->Arg(64)->Arg(512)->Arg(4096);

void
BM_PrfLeaf(benchmark::State& state)
{
    u8 key[16] = {3};
    Prf prf(key);
    u64 c = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(prf.leafFor(42, ++c, 24));
    }
}
BENCHMARK(BM_PrfLeaf);

void
BM_PmmacTag(benchmark::State& state)
{
    u8 key[16] = {4};
    Mac mac(key);
    std::vector<u8> data(64, 7);
    u64 c = 0;
    for (auto _ : state) {
        auto t = mac.compute(++c, 9, data.data(), data.size());
        benchmark::DoNotOptimize(t);
    }
}
BENCHMARK(BM_PmmacTag);

void
BM_BucketEncode(benchmark::State& state)
{
    const OramParams p = OramParams::forCapacity(u64{4} << 30, 64, 4);
    const bool real_aes = state.range(0) != 0;
    AesCtrCipher aes;
    FastCipher fast;
    BucketCodec codec(p, real_aes
                             ? static_cast<const StreamCipher*>(&aes)
                             : &fast);
    Bucket b = Bucket::empty(p);
    b.slots[0].addr = 1;
    b.slots[0].leaf = 2;
    b.slots[0].data.assign(p.storedBlockBytes(), 0x5c);
    // The raw span layer: serialize + encrypt into preallocated buffers,
    // as the backend's writeback hot path does.
    std::vector<const Block*> slots(codec.slots(), nullptr);
    slots[0] = &b.slots[0];
    std::vector<u8> stage(codec.physBytes());
    std::vector<u8> out(codec.physBytes());
    for (auto _ : state) {
        codec.encodeInto(3, codec.nextSeed(0), slots.data(),
                         stage.data(), out.data());
        benchmark::DoNotOptimize(out.data());
    }
    state.SetBytesProcessed(static_cast<i64>(state.iterations()) *
                            static_cast<i64>(p.bucketPhysBytes()));
    state.SetLabel(real_aes ? "aes-ctr" : "fast-cipher");
}
BENCHMARK(BM_BucketEncode)->Arg(0)->Arg(1);

void
BM_StashEvictPath(benchmark::State& state)
{
    const u32 levels = 24, z = 4;
    Xoshiro256 rng(5);
    std::vector<Block*> slots(u64{levels + 1} * z, nullptr);
    for (auto _ : state) {
        state.PauseTiming();
        Stash stash(200, z * (levels + 1));
        for (Addr a = 1; a <= 150; ++a) {
            Block blk;
            blk.addr = a;
            blk.leaf = rng.below(u64{1} << levels);
            blk.data.assign(64, 1);
            stash.insert(std::move(blk));
        }
        state.ResumeTiming();
        stash.evictPath(rng.below(u64{1} << levels), levels, z,
                        slots.data());
        stash.finishEviction();
        benchmark::DoNotOptimize(slots.data());
    }
}
BENCHMARK(BM_StashEvictPath);

void
BM_PlbLookup(benchmark::State& state)
{
    Plb plb({64 * 1024, 64, 1});
    for (Addr a = 0; a < 1024; ++a) {
        PlbEntry e;
        e.addr = a;
        e.leaf = a;
        plb.insert(std::move(e));
    }
    Xoshiro256 rng(6);
    for (auto _ : state) {
        benchmark::DoNotOptimize(plb.lookup(rng.below(2048)));
    }
}
BENCHMARK(BM_PlbLookup);

void
BM_DramPathBatch(benchmark::State& state)
{
    const OramParams p = OramParams::forCapacity(u64{4} << 30, 64, 4);
    DramModel dram(DramConfig::ddr3(static_cast<u32>(state.range(0))));
    SubtreeLayout layout(p.levels, p.bucketPhysBytes(),
                         u64{dram.config().rowBytes} *
                             dram.config().channels);
    Xoshiro256 rng(7);
    const u64 bursts = divCeil(p.bucketPhysBytes(), 64);
    for (auto _ : state) {
        std::vector<DramRequest> reqs;
        const Leaf leaf = rng.below(p.numLeaves());
        for (const auto& c : layout.path(leaf))
            for (u64 b = 0; b < bursts; ++b)
                reqs.push_back({layout.addressOf(c) + b * 64, false});
        benchmark::DoNotOptimize(dram.accessBatch(reqs));
    }
}
BENCHMARK(BM_DramPathBatch)->Arg(1)->Arg(2)->Arg(8);

void
BM_FrontendAccess(benchmark::State& state)
{
    UnifiedFrontendConfig c;
    c.numBlocks = u64{1} << 24; // 1 GB
    c.format = state.range(0) == 0 ? PosMapFormat::Kind::Leaves
               : state.range(0) == 1
                   ? PosMapFormat::Kind::Compressed
                   : PosMapFormat::Kind::Compressed;
    c.integrity = state.range(0) == 2;
    c.plb.capacityBytes = 64 * 1024;
    c.storage = StorageMode::Null;
    UnifiedFrontend fe(c, nullptr, nullptr);
    Xoshiro256 rng(8);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            fe.access(rng.below(c.numBlocks), false));
    }
    state.SetLabel(fe.name());
}
BENCHMARK(BM_FrontendAccess)->Arg(0)->Arg(1)->Arg(2);

} // namespace
} // namespace froram

BENCHMARK_MAIN();
