/**
 * @file
 * Figure 6 reproduction (the paper's main result): slowdown of R_X8,
 * PC_X32 and PIC_X32 relative to an insecure system, per SPEC-proxy
 * benchmark, for the Table 1 configuration (4 GB ORAM, 64 B blocks,
 * 64 KB direct-mapped PLB, 2 DRAM channels).
 *
 * Expected shape (paper): PC_X32 ~1.43x faster than R_X8 (geomean);
 * PIC_X32 within ~7% of PC_X32; worst slowdowns on mcf/omnet/libq,
 * mildest on hmmer/sjeng/gob.
 */
#include "bench_common.hpp"

using namespace froram;
using namespace froram::bench;

int
main(int argc, char** argv)
{
    const auto opts = BenchOptions::parse(argc, argv);
    const u64 refs = opts.scaled(400000);
    const u64 warmup = opts.scaled(150000);

    OramSystemConfig cfg;
    cfg.capacityBytes = u64{4} << 30;
    cfg.dramChannels = 2;
    cfg.plbBytes = 64 * 1024;
    cfg.storage = StorageMode::Null;

    const SchemeId schemes[] = {SchemeId::Recursive,
                                SchemeId::PlbCompressed,
                                SchemeId::PlbIntegrityCompressed};

    TextTable table({"bench", "R_X8", "PC_X32", "PIC_X32", "mpki"});
    std::vector<double> slow[3];
    for (const auto& spec : specSuite()) {
        const auto base = runInsecure(2, spec, refs, warmup, 7);
        table.newRow();
        table.cell(spec.name);
        for (int s = 0; s < 3; ++s) {
            const auto p =
                runOnOram(schemes[s], cfg, spec, refs, warmup, 7);
            const double slowdown = static_cast<double>(p.cycles) /
                                    static_cast<double>(base.cycles);
            slow[s].push_back(slowdown);
            table.cell(slowdown, 2);
        }
        const double mpki =
            1000.0 * static_cast<double>(base.llcMisses) /
            (static_cast<double>(base.memRefs) * (spec.gap + 1));
        table.cell(mpki, 1);
    }
    table.newRow();
    table.cell(std::string("geomean"));
    for (auto& s : slow)
        table.cell(geomean(s), 2);
    table.cell(std::string("-"));

    emit(opts, table,
         "Figure 6: slowdown vs insecure DRAM (4 GB ORAM, 2 channels, "
         "64 KB PLB)");

    std::cout << "\nPC_X32 speedup over R_X8 (geomean): "
              << geomean(slow[0]) / geomean(slow[1])
              << "x  (paper: 1.43x)\n";
    std::cout << "PIC_X32 overhead over PC_X32 (geomean): "
              << (geomean(slow[2]) / geomean(slow[1]) - 1.0) * 100.0
              << "%  (paper: ~7%)\n";
    return 0;
}
