/**
 * @file
 * Section 6.3 reproduction: hash bandwidth of PMMAC vs the Merkle tree
 * baseline [25]. PMMAC verifies exactly one block (the block of
 * interest) per access; a Merkle scheme must hash every block on the
 * path to check and update the root, i.e. Z*(L+1) blocks.
 *
 * Paper claims: >= 68x reduction for L = 16 and 132x for L = 32 (Z = 4),
 * plus the serialization argument (Merkle parent hashes depend on child
 * hashes; PMMAC's single MAC has no such chain).
 *
 * Measured here: (a) the analytic ratio across L; (b) an actual
 * instrumented run of both schemes on a small tree counting bytes
 * hashed.
 */
#include "bench_common.hpp"
#include "integrity/merkle_tree.hpp"
#include "util/rng.hpp"

using namespace froram;
using namespace froram::bench;

int
main(int argc, char** argv)
{
    const auto opts = BenchOptions::parse(argc, argv);

    TextTable table({"L", "Z", "merkle_blocks_per_access",
                     "pmmac_blocks_per_access", "reduction"});
    for (u32 levels : {10u, 16u, 24u, 32u}) {
        const u64 merkle_blocks = u64{4} * (levels + 1);
        table.newRow();
        table.cell(u64{levels});
        table.cell(u64{4});
        table.cell(merkle_blocks);
        table.cell(u64{1});
        table.cell(static_cast<double>(merkle_blocks), 0);
    }
    emit(opts, table,
         "Section 6.3 (analytic): blocks hashed per access, "
         "check+update counted once each");

    // Instrumented comparison on a real (small) tree.
    const u64 accesses = opts.scaled(400);
    const OramParams p = OramParams::forCapacity(1 << 20, 64, 4);
    AesCtrCipher cipher;

    // Merkle-protected backend.
    auto storage = std::make_unique<EncryptedTreeStorage>(p, &cipher);
    auto* storage_raw = storage.get();
    u8 key[16] = {1};
    MerkleTree merkle(p, storage_raw, key);
    BackendConfig bc;
    bc.params = p;
    merkle.attach(bc);
    PathOramBackend backend(
        bc, std::move(storage),
        std::make_unique<FlatLayout>(p.levels, p.bucketPhysBytes()),
        nullptr);

    Xoshiro256 rng(5);
    std::vector<Leaf> posmap(256, kNoLeaf);
    for (u64 i = 0; i < accesses; ++i) {
        const Addr a = rng.below(256);
        const Leaf use = posmap[a] == kNoLeaf ? rng.below(p.numLeaves())
                                              : posmap[a];
        const Leaf fresh = rng.below(p.numLeaves());
        posmap[a] = fresh;
        backend.access(i % 2 ? Op::Read : Op::Write, a, use, fresh);
    }
    const double merkle_bytes =
        static_cast<double>(merkle.stats().get("bytesHashed")) / accesses;

    // PMMAC hashes exactly one block image (block + MAC bits) per
    // access: counter || addr || payload.
    const double pmmac_bytes = 16.0 + static_cast<double>(64 + 16);

    TextTable inst({"scheme", "bytes_hashed_per_access", "reduction"});
    inst.newRow();
    inst.cell(std::string("merkle"));
    inst.cell(merkle_bytes, 1);
    inst.cell(1.0, 1);
    inst.newRow();
    inst.cell(std::string("pmmac"));
    inst.cell(pmmac_bytes, 1);
    inst.cell(merkle_bytes / pmmac_bytes, 1);
    emit(opts, inst,
         "Instrumented hash traffic on a 1 MB tree (L=" +
             std::to_string(p.levels) + ")");

    std::cout << "\nAnalytic reduction at L=16: "
              << 4 * (16 + 1) << "x (paper: 68x); at L=32: "
              << 4 * (32 + 1) << "x (paper: 132x)\n";
    return 0;
}
