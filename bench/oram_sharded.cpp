/**
 * @file
 * Sharded-service scaling benchmark: aggregate wall-clock throughput
 * and batch latency of a ShardedOramService (PC_X32, 64 MB total,
 * Encrypted storage, flat backend, AES-NI CTR) across shard counts and
 * batch depths. This is the tracked scaling stake: it emits
 * `BENCH_shard.json` so successive PRs can compare the parallel path
 * the way BENCH_hotpath.json tracks the single-threaded one.
 *
 *   $ ./oram_sharded [--scale=F] [--csv] [--out=BENCH_shard.json]
 *
 * JSON schema: one record per (shards, batch_depth) with
 *   {"bench", "scheme", "backend", "cipher", "capacity_mb", "shards",
 *    "workers", "batch_depth", "accesses", "acc_per_sec",
 *    "p50_batch_us", "p99_batch_us", "hardware_threads", "commit"}
 * where acc_per_sec is AGGREGATE service throughput and
 * p50/p99_batch_us are submit→complete latency percentiles over whole
 * batches (the unit of the async API).
 *
 * Scaling expectation: near-linear in shards on the flat backend while
 * shards <= hardware_threads (each shard is an independent ORAM driven
 * by its own worker); beyond the core count the lines flatten — the
 * hardware_threads field is in every row precisely so a reader can
 * tell the two regimes apart (a 1-core container cannot show >1x,
 * however many shards it runs).
 */
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>

#include "bench_common.hpp"
#include "shard/sharded_service.hpp"
#include "util/rng.hpp"

using namespace froram;

namespace {

struct Row {
    u32 shards = 0;
    u32 workers = 0;
    u32 batchDepth = 0;
    u64 accesses = 0;
    double accPerSec = 0;
    double p50BatchUs = 0;
    double p99BatchUs = 0;
};

Row
runOne(u32 shards, u32 batch_depth, u64 accesses)
{
    ShardedServiceConfig cfg;
    cfg.scheme = SchemeId::PlbCompressed;
    cfg.base.capacityBytes = u64{64} << 20; // 64 MB total, as hotpath
    cfg.base.blockBytes = 64;
    cfg.base.storage = StorageMode::Encrypted;
    cfg.base.backend = StorageBackendKind::Flat;
    cfg.base.realAes = true;
    cfg.numShards = shards;
    cfg.numWorkers = shards; // one worker per shard when cores allow
    ShardedOramService svc(cfg);

    Xoshiro256 rng(3);
    std::vector<u8> payload(cfg.base.blockBytes, 0xC5);

    // Fixed working set, written once up front (same protocol as
    // oram_hotpath): the measured phase hits warmed blocks only.
    const u64 working = std::min<u64>(svc.numBlocks(), 16384);
    {
        std::vector<ShardRequest> warm;
        for (Addr a = 0; a < working; ++a) {
            ShardRequest r;
            r.addr = a;
            r.isWrite = true;
            r.writeData = payload;
            warm.push_back(std::move(r));
            if (warm.size() == 1024 || a + 1 == working) {
                svc.submit(std::move(warm)).get();
                warm.clear();
            }
        }
    }

    // Measured phase: batches of `batch_depth`, a small pipeline of
    // them outstanding so the pool never idles between submissions;
    // per-batch submit→complete latency sampled on every batch.
    const u64 batches =
        std::max<u64>(accesses / batch_depth, 1);
    constexpr size_t kInflight = 4;
    using Clock = std::chrono::steady_clock;
    struct Pending {
        std::future<ShardedOramService::BatchResult> fut;
        Clock::time_point submitted;
    };
    std::vector<Pending> window;
    std::vector<double> lat_us;
    lat_us.reserve(batches);

    const auto start = Clock::now();
    for (u64 bi = 0; bi < batches; ++bi) {
        std::vector<ShardRequest> batch(batch_depth);
        for (u32 i = 0; i < batch_depth; ++i) {
            batch[i].addr = rng.below(working);
            if ((bi * batch_depth + i) % 4 == 0) {
                batch[i].isWrite = true;
                batch[i].writeData = payload;
            }
        }
        if (window.size() == kInflight) {
            Pending& p = window.front();
            p.fut.get();
            lat_us.push_back(
                std::chrono::duration<double, std::micro>(
                    Clock::now() - p.submitted)
                    .count());
            window.erase(window.begin());
        }
        Pending p;
        p.submitted = Clock::now();
        p.fut = svc.submit(std::move(batch));
        window.push_back(std::move(p));
    }
    for (Pending& p : window) {
        p.fut.get();
        lat_us.push_back(std::chrono::duration<double, std::micro>(
                             Clock::now() - p.submitted)
                             .count());
    }
    const double secs =
        std::chrono::duration<double>(Clock::now() - start).count();

    Row row;
    row.shards = shards;
    row.workers = svc.numWorkers();
    row.batchDepth = batch_depth;
    row.accesses = batches * batch_depth;
    row.accPerSec = static_cast<double>(row.accesses) / secs;
    row.p50BatchUs = bench::percentile(lat_us, 50);
    row.p99BatchUs = bench::percentile(lat_us, 99);
    return row;
}

void
writeJson(const std::string& out_path, const std::vector<Row>& rows)
{
    std::ofstream out(out_path);
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    out << "[\n";
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row& r = rows[i];
        char buf[640];
        std::snprintf(
            buf, sizeof(buf),
            "  {\"bench\": \"sharded\", \"scheme\": \"PC_X32\", "
            "\"backend\": \"flat\", \"cipher\": \"aesctr\", "
            "\"capacity_mb\": 64, \"shards\": %u, \"workers\": %u, "
            "\"batch_depth\": %u, \"accesses\": %llu, "
            "\"acc_per_sec\": %.1f, \"p50_batch_us\": %.1f, "
            "\"p99_batch_us\": %.1f, \"hardware_threads\": %u, "
            "\"commit\": \"%s\"}%s\n",
            r.shards, r.workers, r.batchDepth,
            static_cast<unsigned long long>(r.accesses), r.accPerSec,
            r.p50BatchUs, r.p99BatchUs, hw, bench::gitRev(),
            i + 1 < rows.size() ? "," : "");
        out << buf;
    }
    out << "]\n";
}

} // namespace

int
main(int argc, char** argv)
{
    const auto opts = bench::BenchOptions::parse(argc, argv);
    std::string out_path = "BENCH_shard.json";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--out=", 0) == 0)
            out_path = arg.substr(6);
    }
    const u64 accesses = opts.scaled(40000);

    std::vector<Row> rows;
    TextTable table({"shards", "workers", "batch_depth", "acc_per_sec",
                     "p50_batch_us", "p99_batch_us"});
    // batch depths aligned with BENCH_hotpath.json's batched rows so
    // the sharded pipeline (worker lookahead prefetch) and the
    // single-threaded accessBatch engine are comparable at equal depth.
    for (const u32 shards : {1u, 2u, 4u, 8u}) {
        for (const u32 depth : {1u, 8u, 32u}) {
            const Row row = runOne(shards, depth, accesses);
            rows.push_back(row);
            table.newRow();
            table.cell(static_cast<u64>(row.shards));
            table.cell(static_cast<u64>(row.workers));
            table.cell(static_cast<u64>(row.batchDepth));
            table.cell(row.accPerSec, 0);
            table.cell(row.p50BatchUs, 1);
            table.cell(row.p99BatchUs, 1);
        }
    }

    bench::emit(opts, table,
                "Sharded-service scaling (PC_X32, 64 MB total, flat "
                "backend, AES-NI CTR, 3:1 read:write, " +
                    std::to_string(
                        std::thread::hardware_concurrency()) +
                    " hardware threads)");
    writeJson(out_path, rows);
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
}
