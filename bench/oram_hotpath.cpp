/**
 * @file
 * Hot-path throughput benchmark: wall-clock accesses/sec of the PC_X32
 * frontend with real payload bytes (Encrypted storage) over each storage
 * backend and cipher variant. This is the tracked perf stake: it emits
 * `BENCH_hotpath.json` so successive PRs can be compared run-over-run.
 *
 * Unlike the figure reproductions (which measure *simulated* time), this
 * harness measures how fast the controller itself runs: path read +
 * decrypt + stash + evict + encrypt + path write, end to end.
 *
 *   $ ./oram_hotpath [--scale=F] [--csv] [--out=BENCH_hotpath.json]
 *
 * JSON schema: one record per (bucket scheme, backend, cipher, batch)
 * with
 *   {"bench", "scheme", "bucket_scheme", "backend", "cipher",
 *    "capacity_mb", "batch", "accesses", "acc_per_sec", "us_per_acc",
 *    "p50_us", "p99_us", "mb_per_sec", "online_blocks_per_acc",
 *    "commit"}
 * where mb_per_sec is ORAM path traffic (bytesMoved) over wall time,
 * p50_us/p99_us are per-access wall-clock latency percentiles,
 * online_blocks_per_acc is the simulated online read cost in data
 * blocks per backend access ((L+1)*Z for Path's whole-path reads, the
 * measured one-block-per-bucket count for Ring), and commit is the
 * configure-time git revision — together they make BENCH_hotpath.json
 * rows comparable across PRs. Rows predating the bucket-scheme seam
 * carry no "bucket_scheme" field; bench_compare.py normalizes them to
 * "path".
 *
 * batch = 1 rows drive frontend().access() one request at a time (the
 * historic shape, comparable with pre-batch rows); batch = 8/32 rows
 * drive the same request stream through OramSystem::submit(), the
 * software-pipelined engine (per-access latency for those rows is the
 * batch latency divided by its depth).
 *
 * --scheme=path|ring|both (default both) selects the bucket-scheme
 * rows to run.
 */
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>

#include "bench_common.hpp"
#include "core/unified_frontend.hpp"
#include "util/rng.hpp"

using namespace froram;

namespace {

struct Row {
    std::string bucketScheme;
    std::string backend;
    std::string cipher;
    u32 batch = 1;
    u64 accesses = 0;
    double accPerSec = 0;
    double usPerAcc = 0;
    double p50Us = 0;
    double p99Us = 0;
    double mbPerSec = 0;
    double onlineBlocksPerAcc = 0;
};

Row
runOne(BucketSchemeKind scheme, StorageBackendKind kind, bool real_aes,
       u32 batch, const std::string& path, u64 accesses)
{
    OramSystemConfig cfg;
    cfg.capacityBytes = u64{64} << 20; // 64 MB ORAM: ~20-level tree
    cfg.storage = StorageMode::Encrypted;
    cfg.backend = kind;
    cfg.backendPath = path;
    cfg.realAes = real_aes;
    cfg.bucketScheme = scheme;
    OramSystem sys(SchemeId::PlbCompressed, cfg);
    const u64 blocks = cfg.capacityBytes / cfg.blockBytes;

    Xoshiro256 rng(3);
    std::vector<u8> payload(cfg.blockBytes, 0xC5);

    // Fixed working set, written once up front: the measured phase then
    // hits warmed blocks only (no cold-miss fast paths), and the number
    // means the same thing at every --scale.
    const u64 working = std::min<u64>(blocks, 16384);
    for (Addr a = 0; a < working; ++a)
        sys.frontend().access(a, true, &payload);

    const u64 bytes0 = sys.frontend().stats().get("bytesMoved");
    const StatSet& bstats =
        static_cast<UnifiedFrontend&>(sys.frontend()).backend().stats();
    const u64 bacc0 = bstats.get("accesses");
    const u64 online0 = scheme == BucketSchemeKind::Ring
                            ? bstats.get("onlineBlocks")
                            : bstats.get("pathReads");
    std::vector<double> lat_us;
    lat_us.reserve(accesses);

    // Reused across batches: zero per-batch allocation in the measured
    // loop (results keep their payload buffers, requests their slots).
    std::vector<AccessRequest> reqs(batch);
    std::vector<AccessResult> results(batch);

    const auto start = std::chrono::steady_clock::now();
    auto prev = start;
    u64 issued = 0;
    for (u64 i = 0; issued < accesses; ++i) {
        if (batch == 1) {
            // Historic single-access shape (comparable with pre-batch
            // BENCH rows): one frontend access per measured point.
            const Addr addr = rng.below(working);
            if (issued % 4 == 0)
                sys.frontend().access(addr, true, &payload);
            else
                sys.frontend().access(addr, false);
            ++issued;
        } else {
            for (u32 j = 0; j < batch; ++j) {
                reqs[j].addr = rng.below(working);
                reqs[j].isWrite = (issued + j) % 4 == 0;
                reqs[j].writeData = reqs[j].isWrite ? &payload : nullptr;
            }
            sys.submit(reqs.data(), results.data(), batch);
            issued += batch;
        }
        const auto now = std::chrono::steady_clock::now();
        lat_us.push_back(
            std::chrono::duration<double, std::micro>(now - prev)
                .count() /
            static_cast<double>(batch));
        prev = now;
    }
    const auto end = std::chrono::steady_clock::now();
    const double secs =
        std::chrono::duration<double>(end - start).count();
    const u64 moved = sys.frontend().stats().get("bytesMoved") - bytes0;
    const u64 bacc = bstats.get("accesses") - bacc0;
    const OramParams& params =
        static_cast<UnifiedFrontend&>(sys.frontend()).backend().params();
    // Online read cost in data blocks per backend access: Path reads
    // the whole path ((L+1)*Z, exactly); Ring reads one block per
    // bucket plus the scheduled-eviction paths it interleaves — report
    // only the online component (the Ring ORAM headline metric).
    const double online_per_acc =
        scheme == BucketSchemeKind::Ring
            ? static_cast<double>(bstats.get("onlineBlocks") - online0) /
                  static_cast<double>(bacc)
            : static_cast<double>(
                  (bstats.get("pathReads") - online0) *
                  u64{params.levels + 1} * params.z) /
                  static_cast<double>(bacc);

    Row row;
    row.bucketScheme = toString(scheme);
    row.backend = toString(kind);
    row.cipher = real_aes ? "aesctr" : "fast";
    row.batch = batch;
    row.accesses = issued;
    row.accPerSec = static_cast<double>(issued) / secs;
    row.usPerAcc = 1e6 * secs / static_cast<double>(issued);
    row.p50Us = bench::percentile(lat_us, 50);
    row.p99Us = bench::percentile(lat_us, 99);
    row.mbPerSec = static_cast<double>(moved) / secs / (1024.0 * 1024.0);
    row.onlineBlocksPerAcc = online_per_acc;
    return row;
}

void
writeJson(const std::string& out_path, const std::vector<Row>& rows)
{
    std::ofstream out(out_path);
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return;
    }
    out << "[\n";
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row& r = rows[i];
        char buf[640];
        std::snprintf(
            buf, sizeof(buf),
            "  {\"bench\": \"hotpath\", \"scheme\": \"PC_X32\", "
            "\"bucket_scheme\": \"%s\", "
            "\"backend\": \"%s\", \"cipher\": \"%s\", "
            "\"capacity_mb\": 64, \"batch\": %u, \"accesses\": %llu, "
            "\"acc_per_sec\": %.1f, \"us_per_acc\": %.3f, "
            "\"p50_us\": %.3f, \"p99_us\": %.3f, "
            "\"mb_per_sec\": %.1f, \"online_blocks_per_acc\": %.2f, "
            "\"commit\": \"%s\"}%s\n",
            r.bucketScheme.c_str(), r.backend.c_str(), r.cipher.c_str(),
            r.batch, static_cast<unsigned long long>(r.accesses),
            r.accPerSec, r.usPerAcc, r.p50Us, r.p99Us, r.mbPerSec,
            r.onlineBlocksPerAcc, bench::gitRev(),
            i + 1 < rows.size() ? "," : "");
        out << buf;
    }
    out << "]\n";
}

} // namespace

int
main(int argc, char** argv)
{
    const auto opts = bench::BenchOptions::parse(argc, argv);
    std::string out_path = "BENCH_hotpath.json";
    std::string only_backend; // --backend=flat|mmap|dram: fast iteration
    std::string scheme_arg = "both"; // --scheme=path|ring|both
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--out=", 0) == 0)
            out_path = arg.substr(6);
        else if (arg.rfind("--backend=", 0) == 0)
            only_backend = arg.substr(10);
        else if (arg.rfind("--scheme=", 0) == 0)
            scheme_arg = arg.substr(9);
    }
    std::vector<BucketSchemeKind> schemes;
    if (scheme_arg == "both")
        schemes = {BucketSchemeKind::Path, BucketSchemeKind::Ring};
    else
        schemes = {bucketSchemeFromName(scheme_arg)};
    const u64 accesses = opts.scaled(40000);
    const std::string path = "/tmp/froram_oram_hotpath.bin";

    std::vector<Row> rows;
    TextTable table({"bucket", "backend", "cipher", "batch",
                     "acc_per_sec", "us_per_acc", "p50_us", "p99_us",
                     "mb_per_sec", "onl_blk/acc"});
    for (const BucketSchemeKind scheme : schemes) {
        for (const StorageBackendKind kind :
             {StorageBackendKind::Flat, StorageBackendKind::MmapFile,
              StorageBackendKind::TimedDram}) {
            if (!only_backend.empty() && only_backend != toString(kind))
                continue;
            for (const bool real_aes : {true, false}) {
                for (const u32 batch : {1u, 8u, 32u}) {
                    const Row row = runOne(scheme, kind, real_aes,
                                           batch, path, accesses);
                    rows.push_back(row);
                    table.newRow();
                    table.cell(row.bucketScheme);
                    table.cell(row.backend);
                    table.cell(row.cipher);
                    table.cell(static_cast<u64>(row.batch));
                    table.cell(row.accPerSec, 0);
                    table.cell(row.usPerAcc, 2);
                    table.cell(row.p50Us, 2);
                    table.cell(row.p99Us, 2);
                    table.cell(row.mbPerSec, 1);
                    table.cell(row.onlineBlocksPerAcc, 1);
                }
            }
        }
    }
    std::remove(path.c_str());

    bench::emit(opts, table,
                "Hot-path wall-clock throughput (PC_X32, 64 MB ORAM, "
                "Encrypted storage, 3:1 read:write, Path + Ring bucket "
                "schemes, batched rows via OramSystem::submit)");
    writeJson(out_path, rows);
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
}
