/**
 * @file
 * Fault-tolerance benchmark: what storage misbehavior costs.
 *
 * Two measured modes, both on the supervised sharded service (PC_X32,
 * 64 MB total, Encrypted storage, flat backend, AES-NI CTR):
 *
 *  - throughput: aggregate accesses/sec at 0%, 0.1% and 1% random
 *    transient-EIO rates on path reads, with the retry layer absorbing
 *    every fault (degraded mode). The 0% row doubles as the zero-fault
 *    control: its cost relative to BENCH_shard.json's matching row is
 *    the price of merely arming the fault decorators.
 *  - recovery: time-to-recover after a forced quarantine — a hard
 *    (non-transient) EIO fail-stops one shard, and the recovery clock
 *    runs from the typed fault reply until the supervisor has rolled
 *    the shard back to its recovery point and re-admitted it.
 *
 *   $ ./oram_faults [--scale=F] [--csv] [--out=BENCH_faults.json]
 *
 * JSON schema (`BENCH_faults.json`): throughput rows are
 *   {"bench": "faults", "mode": "throughput", "scheme", "backend",
 *    "cipher", "capacity_mb", "shards", "workers", "batch_depth",
 *    "fault_rate", "accesses", "acc_per_sec", "faults", "retries",
 *    "failed", "hardware_threads", "commit"}
 * and recovery rows are
 *   {"bench": "faults", "mode": "recovery", ..., "rounds",
 *    "recovery_ms_p50", "recovery_ms_p99", "commit"}.
 * scripts/bench_compare.py knows this schema: fault_rate identifies a
 * row, acc_per_sec and the recovery percentiles are judged metrics,
 * faults/retries/failed are informational.
 */
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>

#include "bench_common.hpp"
#include "mem/fault_injecting_backend.hpp"
#include "shard/sharded_service.hpp"
#include "util/rng.hpp"

using namespace froram;

namespace {

constexpr u32 kShards = 4;
constexpr u32 kBatchDepth = 32;

struct Row {
    std::string mode;
    double faultRate = 0;
    u64 accesses = 0;
    double accPerSec = 0;
    u64 faults = 0;
    u64 retries = 0;
    u64 failed = 0;
    u64 rounds = 0;
    double recoveryMsP50 = 0;
    double recoveryMsP99 = 0;
};

ShardedServiceConfig
serviceConfig()
{
    ShardedServiceConfig cfg;
    cfg.scheme = SchemeId::PlbCompressed;
    cfg.base.capacityBytes = u64{64} << 20; // as BENCH_shard.json
    cfg.base.blockBytes = 64;
    cfg.base.storage = StorageMode::Encrypted;
    cfg.base.backend = StorageBackendKind::Flat;
    cfg.base.realAes = true;
    cfg.numShards = kShards;
    cfg.numWorkers = kShards;
    cfg.supervision.retry.maxAttempts = 8;
    cfg.supervision.retry.baseBackoffUs = 1;
    cfg.supervision.retry.maxBackoffUs = 50;
    return cfg;
}

void
warmWorkingSet(ShardedOramService& svc, u64 working,
               const std::vector<u8>& payload)
{
    std::vector<ShardRequest> warm;
    for (Addr a = 0; a < working; ++a) {
        ShardRequest r;
        r.addr = a;
        r.isWrite = true;
        r.writeData = payload;
        warm.push_back(std::move(r));
        if (warm.size() == 1024 || a + 1 == working) {
            svc.submit(std::move(warm)).get();
            warm.clear();
        }
    }
}

/** Degraded-mode throughput at one random transient-fault rate. */
Row
runThroughput(double fault_rate, u64 accesses)
{
    ShardedServiceConfig cfg = serviceConfig();
    auto sched = std::make_shared<FaultSchedule>();
    if (fault_rate > 0)
        sched->setRandomRate(fault_rate, 0xfa57 + u64(fault_rate * 1e4));
    cfg.base.faultSchedule = sched;
    ShardedOramService svc(cfg);

    Xoshiro256 rng(3);
    std::vector<u8> payload(cfg.base.blockBytes, 0xC5);
    const u64 working = std::min<u64>(svc.numBlocks(), 16384);
    warmWorkingSet(svc, working, payload);
    const u64 warm_faults = sched->faultsFired();

    const u64 batches = std::max<u64>(accesses / kBatchDepth, 1);
    constexpr size_t kInflight = 4;
    using Clock = std::chrono::steady_clock;
    std::vector<std::future<ShardedOramService::BatchResult>> window;
    u64 failed = 0;
    const auto drainOne = [&](size_t i) {
        for (const ShardAccessResult& r : window[i].get())
            failed += r.status != RequestStatus::Ok ? 1 : 0;
        window.erase(window.begin() + static_cast<std::ptrdiff_t>(i));
    };

    const auto start = Clock::now();
    for (u64 bi = 0; bi < batches; ++bi) {
        std::vector<ShardRequest> batch(kBatchDepth);
        for (u32 i = 0; i < kBatchDepth; ++i) {
            batch[i].addr = rng.below(working);
            if ((bi * kBatchDepth + i) % 4 == 0) {
                batch[i].isWrite = true;
                batch[i].writeData = payload;
            }
        }
        if (window.size() == kInflight)
            drainOne(0);
        window.push_back(svc.submit(std::move(batch)));
    }
    while (!window.empty())
        drainOne(0);
    const double secs =
        std::chrono::duration<double>(Clock::now() - start).count();

    Row row;
    row.mode = "throughput";
    row.faultRate = fault_rate;
    row.accesses = batches * kBatchDepth;
    row.accPerSec = static_cast<double>(row.accesses) / secs;
    row.faults = sched->faultsFired() - warm_faults;
    for (u32 s = 0; s < svc.numShards(); ++s)
        row.retries += svc.shardReport(s).transientFaults;
    row.failed = failed;
    return row;
}

/** Forced quarantine + rollback: time-to-recover percentiles. */
Row
runRecovery(u64 rounds)
{
    ShardedServiceConfig cfg = serviceConfig();
    cfg.supervision.retry.maxAttempts = 1; // hard faults escape at once
    cfg.supervision.maxRecoveries = 0xffffffffu;
    auto sched = std::make_shared<FaultSchedule>();
    cfg.shardFaultSchedules.assign(kShards, nullptr);
    cfg.shardFaultSchedules[0] = sched; // shard 0 is the victim
    ShardedOramService svc(cfg);

    std::vector<u8> payload(cfg.base.blockBytes, 0xC5);
    const u64 working = std::min<u64>(svc.numBlocks(), 4096);
    warmWorkingSet(svc, working, payload);

    // The victim address: any block shard 0 serves.
    Addr victim = 0;
    while (svc.shardOf(victim) != 0)
        ++victim;

    using Clock = std::chrono::steady_clock;
    std::vector<double> recovery_ms;
    recovery_ms.reserve(rounds);
    for (u64 round = 0; round < rounds; ++round) {
        svc.refreshRecoveryPoints();
        svc.drain();

        FaultSpec spec;
        spec.op = FaultOp::Read;
        spec.kind = FaultKind::Eio;
        spec.afterOps = sched->opsSeen(FaultOp::Read);
        spec.count = 1;
        spec.transient = false;
        sched->inject(spec);

        std::vector<ShardRequest> one;
        one.push_back({victim, false, {}, 0});
        auto res = svc.submit(std::move(one)).get();
        if (res[0].status == RequestStatus::Ok) {
            std::fprintf(stderr,
                         "round %llu: fault did not fire, skipping\n",
                         static_cast<unsigned long long>(round));
            continue;
        }
        // Clock runs from the typed fault reply to re-admission (the
        // supervisor rolls back as soon as the shard's queue drains).
        const auto t0 = Clock::now();
        while (svc.shardHealth(0) == ShardHealth::Quarantined)
            std::this_thread::sleep_for(std::chrono::microseconds(20));
        recovery_ms.push_back(
            std::chrono::duration<double, std::milli>(Clock::now() - t0)
                .count());
        svc.drain();
    }

    Row row;
    row.mode = "recovery";
    row.rounds = recovery_ms.size();
    row.recoveryMsP50 = bench::percentile(recovery_ms, 50);
    row.recoveryMsP99 = bench::percentile(recovery_ms, 99);
    return row;
}

void
writeJson(const std::string& out_path, const std::vector<Row>& rows)
{
    std::ofstream out(out_path);
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    out << "[\n";
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row& r = rows[i];
        char buf[768];
        if (r.mode == "throughput") {
            std::snprintf(
                buf, sizeof(buf),
                "  {\"bench\": \"faults\", \"mode\": \"throughput\", "
                "\"scheme\": \"PC_X32\", \"backend\": \"flat\", "
                "\"cipher\": \"aesctr\", \"capacity_mb\": 64, "
                "\"shards\": %u, \"workers\": %u, \"batch_depth\": %u, "
                "\"fault_rate\": %g, \"accesses\": %llu, "
                "\"acc_per_sec\": %.1f, \"faults\": %llu, "
                "\"retries\": %llu, \"failed\": %llu, "
                "\"hardware_threads\": %u, \"commit\": \"%s\"}%s\n",
                kShards, kShards, kBatchDepth, r.faultRate,
                static_cast<unsigned long long>(r.accesses),
                r.accPerSec,
                static_cast<unsigned long long>(r.faults),
                static_cast<unsigned long long>(r.retries),
                static_cast<unsigned long long>(r.failed), hw,
                bench::gitRev(), i + 1 < rows.size() ? "," : "");
        } else {
            std::snprintf(
                buf, sizeof(buf),
                "  {\"bench\": \"faults\", \"mode\": \"recovery\", "
                "\"scheme\": \"PC_X32\", \"backend\": \"flat\", "
                "\"cipher\": \"aesctr\", \"capacity_mb\": 64, "
                "\"shards\": %u, \"workers\": %u, \"rounds\": %llu, "
                "\"recovery_ms_p50\": %.3f, \"recovery_ms_p99\": %.3f, "
                "\"hardware_threads\": %u, \"commit\": \"%s\"}%s\n",
                kShards, kShards,
                static_cast<unsigned long long>(r.rounds),
                r.recoveryMsP50, r.recoveryMsP99, hw, bench::gitRev(),
                i + 1 < rows.size() ? "," : "");
        }
        out << buf;
    }
    out << "]\n";
}

} // namespace

int
main(int argc, char** argv)
{
    const auto opts = bench::BenchOptions::parse(argc, argv);
    std::string out_path = "BENCH_faults.json";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--out=", 0) == 0)
            out_path = arg.substr(6);
    }
    const u64 accesses = opts.scaled(40000);
    const u64 rounds = opts.scaled(20);

    std::vector<Row> rows;
    TextTable table({"mode", "fault_rate", "acc_per_sec", "faults",
                     "retries", "failed", "recovery_ms_p50",
                     "recovery_ms_p99"});
    for (const double rate : {0.0, 0.001, 0.01}) {
        const Row row = runThroughput(rate, accesses);
        rows.push_back(row);
        table.newRow();
        table.cell(row.mode);
        table.cell(row.faultRate, 3);
        table.cell(row.accPerSec, 0);
        table.cell(row.faults);
        table.cell(row.retries);
        table.cell(row.failed);
        table.cell(0.0, 3);
        table.cell(0.0, 3);
    }
    {
        const Row row = runRecovery(rounds);
        rows.push_back(row);
        table.newRow();
        table.cell(row.mode);
        table.cell(0.0, 3);
        table.cell(0.0, 0);
        table.cell(row.faults);
        table.cell(row.retries);
        table.cell(row.failed);
        table.cell(row.recoveryMsP50, 3);
        table.cell(row.recoveryMsP99, 3);
    }

    bench::emit(opts, table,
                "Fault-tolerance: degraded-mode throughput and "
                "time-to-recover (PC_X32, 64 MB total, flat backend, "
                "AES-NI CTR, " +
                    std::to_string(
                        std::thread::hardware_concurrency()) +
                    " hardware threads)");
    writeJson(out_path, rows);
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
}
