/**
 * @file
 * Request-journal benchmark: what RPO = 0 costs.
 *
 * Three measured modes on the supervised sharded service (PC_X32,
 * Encrypted storage, AES-NI CTR):
 *
 *  - throughput: aggregate accesses/sec with the journal off
 *    (fsync_batch = 0, the unjournaled hot path) and with group commit
 *    at fsync batch sizes 1, 8 and 64. The off row is the control; the
 *    batch-1 row is the strict fdatasync-per-record worst case; the
 *    spread between them is the price of the append-then-ack contract
 *    at each amortization level.
 *  - replay: a journaled service is checkpointed, driven past the
 *    watermark and torn down; the clock runs over open() — manifest
 *    verify + snapshot restore + replay of the durable journal suffix
 *    through submit() — giving records/sec of replay and the reopen
 *    latency percentiles.
 *  - rollback: time-to-recover of the journaled inline rollback — a
 *    hard EIO fail-stops one shard and the faulted request itself is
 *    measured from submit to its (successful) ack, which covers
 *    quarantine, checkpoint restore, suffix replay and re-admission.
 *
 *   $ ./oram_journal [--scale=F] [--csv] [--out=BENCH_journal.json]
 *
 * JSON schema (`BENCH_journal.json`): throughput rows are
 *   {"bench": "journal", "mode": "throughput", "scheme", "backend",
 *    "cipher", "capacity_mb", "shards", "workers", "batch_depth",
 *    "fsync_batch", "accesses", "acc_per_sec", "failed",
 *    "hardware_threads", "commit"}
 * replay rows are
 *   {"bench": "journal", "mode": "replay", ..., "rounds", "records",
 *    "replay_records_per_sec", "open_ms_p50", "open_ms_p99", "commit"}
 * and rollback rows are
 *   {"bench": "journal", "mode": "rollback", ..., "rounds",
 *    "recovery_ms_p50", "recovery_ms_p99", "commit"}.
 * scripts/bench_compare.py knows this schema: fsync_batch identifies a
 * throughput row (0 = journal off); acc_per_sec,
 * replay_records_per_sec, open_ms_* and recovery_ms_* are judged
 * metrics; accesses/records/failed/rounds are informational.
 */
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>

#include <unistd.h>

#include "bench_common.hpp"
#include "mem/fault_injecting_backend.hpp"
#include "shard/sharded_service.hpp"
#include "util/rng.hpp"

using namespace froram;

namespace {

constexpr u32 kShards = 4;
constexpr u32 kBatchDepth = 32;

struct Row {
    std::string mode;
    std::string backend;
    u32 shards = 0;
    u64 capacityMb = 0;
    u64 fsyncBatch = 0; ///< 0 = journal off
    u64 accesses = 0;
    double accPerSec = 0;
    u64 failed = 0;
    u64 rounds = 0;
    u64 records = 0;
    double replayRecPerSec = 0;
    double openMsP50 = 0;
    double openMsP99 = 0;
    double recoveryMsP50 = 0;
    double recoveryMsP99 = 0;
};

std::string
benchDir(const std::string& tag)
{
    static int counter = 0;
    return (std::filesystem::temp_directory_path() /
            ("froram_bench_journal_" + std::to_string(::getpid()) + "_" +
             tag + "_" + std::to_string(counter++)))
        .string();
}

void
dropDir(const std::string& dir)
{
    std::error_code ec;
    std::filesystem::remove_all(dir, ec); // best effort
}

ShardedServiceConfig
serviceConfig(const std::string& dir, u32 shards,
              StorageBackendKind backend)
{
    ShardedServiceConfig cfg;
    cfg.scheme = SchemeId::PlbCompressed;
    cfg.base.capacityBytes = u64{64} << 20; // as BENCH_faults.json
    cfg.base.blockBytes = 64;
    cfg.base.storage = StorageMode::Encrypted;
    cfg.base.backend = backend;
    cfg.base.realAes = true;
    cfg.numShards = shards;
    cfg.numWorkers = shards;
    cfg.directory = dir;
    cfg.supervision.retry.maxAttempts = 8;
    cfg.supervision.retry.baseBackoffUs = 1;
    cfg.supervision.retry.maxBackoffUs = 50;
    return cfg;
}

void
warmWorkingSet(ShardedOramService& svc, u64 working,
               const std::vector<u8>& payload)
{
    std::vector<ShardRequest> warm;
    for (Addr a = 0; a < working; ++a) {
        ShardRequest r;
        r.addr = a;
        r.isWrite = true;
        r.writeData = payload;
        warm.push_back(std::move(r));
        if (warm.size() == 1024 || a + 1 == working) {
            svc.submit(std::move(warm)).get();
            warm.clear();
        }
    }
}

/** Steady-state throughput, journal off or at one fsync batch size. */
Row
runThroughput(u64 fsync_batch, u64 accesses)
{
    const std::string dir =
        benchDir("tp" + std::to_string(fsync_batch));
    ShardedServiceConfig cfg =
        serviceConfig(dir, kShards, StorageBackendKind::Flat);
    if (fsync_batch > 0) {
        cfg.supervision.journal.enabled = true;
        cfg.supervision.journal.fsyncEveryRecords = fsync_batch;
    }
    Row row;
    {
        ShardedOramService svc(cfg);

        Xoshiro256 rng(3);
        std::vector<u8> payload(cfg.base.blockBytes, 0xC5);
        const u64 working = std::min<u64>(svc.numBlocks(), 16384);
        warmWorkingSet(svc, working, payload);

        const u64 batches = std::max<u64>(accesses / kBatchDepth, 1);
        constexpr size_t kInflight = 4;
        using Clock = std::chrono::steady_clock;
        std::vector<std::future<ShardedOramService::BatchResult>> window;
        u64 failed = 0;
        const auto drainOne = [&](size_t i) {
            for (const ShardAccessResult& r : window[i].get())
                failed += r.status != RequestStatus::Ok ? 1 : 0;
            window.erase(window.begin() + static_cast<std::ptrdiff_t>(i));
        };

        const auto start = Clock::now();
        for (u64 bi = 0; bi < batches; ++bi) {
            std::vector<ShardRequest> batch(kBatchDepth);
            for (u32 i = 0; i < kBatchDepth; ++i) {
                batch[i].addr = rng.below(working);
                if ((bi * kBatchDepth + i) % 4 == 0) {
                    batch[i].isWrite = true;
                    batch[i].writeData = payload;
                }
            }
            if (window.size() == kInflight)
                drainOne(0);
            window.push_back(svc.submit(std::move(batch)));
        }
        while (!window.empty())
            drainOne(0);
        const double secs =
            std::chrono::duration<double>(Clock::now() - start).count();

        row.mode = "throughput";
        row.backend = "flat";
        row.shards = kShards;
        row.capacityMb = cfg.base.capacityBytes >> 20;
        row.fsyncBatch = fsync_batch;
        row.accesses = batches * kBatchDepth;
        row.accPerSec = static_cast<double>(row.accesses) / secs;
        row.failed = failed;
    }
    dropDir(dir);
    return row;
}

/**
 * Reopen-with-replay: each round checkpoints (journal GC truncates the
 * covered prefix), drives `records` requests past the watermark, tears
 * the service down and times open(). The replayed-record tally comes
 * from shardReport().lastReplayDepth, so the rate denominator is the
 * exact suffix length, not the submitted count.
 */
Row
runReplay(u64 records, u64 rounds)
{
    const std::string dir = benchDir("replay");
    // Two shards on the mmap backend: the persistent layout open()
    // resumes (flat is rebuilt from snapshots alone).
    ShardedServiceConfig cfg =
        serviceConfig(dir, 2, StorageBackendKind::MmapFile);
    cfg.base.capacityBytes = u64{16} << 20;
    cfg.supervision.journal.enabled = true;
    cfg.supervision.journal.fsyncEveryRecords = 64;

    auto svc = std::make_unique<ShardedOramService>(cfg);
    std::vector<u8> payload(cfg.base.blockBytes, 0xC5);
    const u64 working = std::min<u64>(svc->numBlocks(), 8192);
    warmWorkingSet(*svc, working, payload);

    Xoshiro256 rng(7);
    using Clock = std::chrono::steady_clock;
    std::vector<double> open_ms;
    open_ms.reserve(rounds);
    u64 replayed_total = 0;
    double open_secs_total = 0;
    for (u64 round = 0; round < rounds; ++round) {
        svc->checkpoint();
        std::vector<ShardRequest> batch;
        for (u64 g = 0; g < records; ++g) {
            ShardRequest r;
            r.addr = rng.below(working);
            r.isWrite = (g % 4 == 0);
            if (r.isWrite)
                r.writeData = payload;
            batch.push_back(std::move(r));
            if (batch.size() == kBatchDepth || g + 1 == records) {
                svc->submit(std::move(batch)).get();
                batch.clear();
            }
        }
        svc->drain();
        svc.reset(); // tear down; the journal suffix outlives us

        const auto t0 = Clock::now();
        svc = ShardedOramService::open(cfg);
        const double secs =
            std::chrono::duration<double>(Clock::now() - t0).count();
        for (u32 s = 0; s < svc->numShards(); ++s)
            replayed_total += svc->shardReport(s).lastReplayDepth;
        open_secs_total += secs;
        open_ms.push_back(secs * 1e3);
    }
    svc.reset();

    Row row;
    row.mode = "replay";
    row.backend = "mmap";
    row.shards = 2;
    row.capacityMb = cfg.base.capacityBytes >> 20;
    row.fsyncBatch = cfg.supervision.journal.fsyncEveryRecords;
    row.rounds = rounds;
    row.records = replayed_total;
    row.replayRecPerSec =
        open_secs_total > 0
            ? static_cast<double>(replayed_total) / open_secs_total
            : 0;
    row.openMsP50 = bench::percentile(open_ms, 50);
    row.openMsP99 = bench::percentile(open_ms, 99);
    dropDir(dir);
    return row;
}

/**
 * Journaled inline rollback: a hard EIO fail-stops shard 0 and the
 * faulted request is timed from submit to its ack — which, unlike the
 * unjournaled runtime (BENCH_faults.json's recovery mode, where the
 * gap request fails typed), succeeds with the correct value.
 */
Row
runRollback(u64 rounds)
{
    const std::string dir = benchDir("rollback");
    ShardedServiceConfig cfg =
        serviceConfig(dir, kShards, StorageBackendKind::Flat);
    cfg.supervision.journal.enabled = true;
    cfg.supervision.journal.fsyncEveryRecords = 8;
    cfg.supervision.retry.maxAttempts = 1; // hard faults escape at once
    cfg.supervision.maxRecoveries = 0xffffffffu;
    auto sched = std::make_shared<FaultSchedule>();
    cfg.shardFaultSchedules.assign(kShards, nullptr);
    cfg.shardFaultSchedules[0] = sched; // shard 0 is the victim

    Row row;
    row.mode = "rollback";
    row.backend = "flat";
    row.shards = kShards;
    row.fsyncBatch = cfg.supervision.journal.fsyncEveryRecords;
    {
        ShardedOramService svc(cfg);
        row.capacityMb = cfg.base.capacityBytes >> 20;

        std::vector<u8> payload(cfg.base.blockBytes, 0xC5);
        const u64 working = std::min<u64>(svc.numBlocks(), 4096);
        warmWorkingSet(svc, working, payload);

        Addr victim = 0;
        while (svc.shardOf(victim) != 0)
            ++victim;

        using Clock = std::chrono::steady_clock;
        std::vector<double> recovery_ms;
        recovery_ms.reserve(rounds);
        for (u64 round = 0; round < rounds; ++round) {
            svc.refreshRecoveryPoints();
            svc.drain();

            FaultSpec spec;
            spec.op = FaultOp::Read;
            spec.kind = FaultKind::Eio;
            spec.afterOps = sched->opsSeen(FaultOp::Read);
            spec.count = 1;
            spec.transient = false;
            sched->inject(spec);

            std::vector<ShardRequest> one;
            one.push_back({victim, false, {}, 0});
            const auto t0 = Clock::now();
            auto res = svc.submit(std::move(one)).get();
            recovery_ms.push_back(
                std::chrono::duration<double, std::milli>(Clock::now() -
                                                          t0)
                    .count());
            row.failed += res[0].status != RequestStatus::Ok ? 1 : 0;
            svc.drain();
        }
        row.rounds = recovery_ms.size();
        row.recoveryMsP50 = bench::percentile(recovery_ms, 50);
        row.recoveryMsP99 = bench::percentile(recovery_ms, 99);
    }
    dropDir(dir);
    return row;
}

void
writeJson(const std::string& out_path, const std::vector<Row>& rows)
{
    std::ofstream out(out_path);
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    out << "[\n";
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row& r = rows[i];
        char buf[768];
        if (r.mode == "throughput") {
            std::snprintf(
                buf, sizeof(buf),
                "  {\"bench\": \"journal\", \"mode\": \"throughput\", "
                "\"scheme\": \"PC_X32\", \"backend\": \"%s\", "
                "\"cipher\": \"aesctr\", \"capacity_mb\": %llu, "
                "\"shards\": %u, \"workers\": %u, \"batch_depth\": %u, "
                "\"fsync_batch\": %llu, \"accesses\": %llu, "
                "\"acc_per_sec\": %.1f, \"failed\": %llu, "
                "\"hardware_threads\": %u, \"commit\": \"%s\"}%s\n",
                r.backend.c_str(),
                static_cast<unsigned long long>(r.capacityMb), r.shards,
                r.shards, kBatchDepth,
                static_cast<unsigned long long>(r.fsyncBatch),
                static_cast<unsigned long long>(r.accesses),
                r.accPerSec, static_cast<unsigned long long>(r.failed),
                hw, bench::gitRev(), i + 1 < rows.size() ? "," : "");
        } else if (r.mode == "replay") {
            std::snprintf(
                buf, sizeof(buf),
                "  {\"bench\": \"journal\", \"mode\": \"replay\", "
                "\"scheme\": \"PC_X32\", \"backend\": \"%s\", "
                "\"cipher\": \"aesctr\", \"capacity_mb\": %llu, "
                "\"shards\": %u, \"workers\": %u, "
                "\"fsync_batch\": %llu, \"rounds\": %llu, "
                "\"records\": %llu, \"replay_records_per_sec\": %.1f, "
                "\"open_ms_p50\": %.3f, \"open_ms_p99\": %.3f, "
                "\"hardware_threads\": %u, \"commit\": \"%s\"}%s\n",
                r.backend.c_str(),
                static_cast<unsigned long long>(r.capacityMb), r.shards,
                r.shards, static_cast<unsigned long long>(r.fsyncBatch),
                static_cast<unsigned long long>(r.rounds),
                static_cast<unsigned long long>(r.records),
                r.replayRecPerSec, r.openMsP50, r.openMsP99, hw,
                bench::gitRev(), i + 1 < rows.size() ? "," : "");
        } else {
            std::snprintf(
                buf, sizeof(buf),
                "  {\"bench\": \"journal\", \"mode\": \"rollback\", "
                "\"scheme\": \"PC_X32\", \"backend\": \"%s\", "
                "\"cipher\": \"aesctr\", \"capacity_mb\": %llu, "
                "\"shards\": %u, \"workers\": %u, "
                "\"fsync_batch\": %llu, \"rounds\": %llu, "
                "\"failed\": %llu, \"recovery_ms_p50\": %.3f, "
                "\"recovery_ms_p99\": %.3f, "
                "\"hardware_threads\": %u, \"commit\": \"%s\"}%s\n",
                r.backend.c_str(),
                static_cast<unsigned long long>(r.capacityMb), r.shards,
                r.shards, static_cast<unsigned long long>(r.fsyncBatch),
                static_cast<unsigned long long>(r.rounds),
                static_cast<unsigned long long>(r.failed),
                r.recoveryMsP50, r.recoveryMsP99, hw, bench::gitRev(),
                i + 1 < rows.size() ? "," : "");
        }
        out << buf;
    }
    out << "]\n";
}

void
tableRow(TextTable& table, const Row& r)
{
    table.newRow();
    table.cell(r.mode);
    table.cell(r.fsyncBatch);
    table.cell(r.accPerSec, 0);
    table.cell(r.failed);
    table.cell(r.replayRecPerSec, 0);
    table.cell(r.openMsP50, 3);
    table.cell(r.recoveryMsP50, 3);
    table.cell(r.recoveryMsP99, 3);
}

} // namespace

int
main(int argc, char** argv)
{
    const auto opts = bench::BenchOptions::parse(argc, argv);
    std::string out_path = "BENCH_journal.json";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--out=", 0) == 0)
            out_path = arg.substr(6);
    }
    const u64 accesses = opts.scaled(40000);
    const u64 replay_records = opts.scaled(8000);
    const u64 replay_rounds = std::max<u64>(opts.scaled(4), 2);
    const u64 rollback_rounds = opts.scaled(20);

    std::vector<Row> rows;
    TextTable table({"mode", "fsync_batch", "acc_per_sec", "failed",
                     "replay_rec_per_sec", "open_ms_p50",
                     "recovery_ms_p50", "recovery_ms_p99"});
    for (const u64 batch : {u64{0}, u64{1}, u64{8}, u64{64}}) {
        const Row row = runThroughput(batch, accesses);
        rows.push_back(row);
        tableRow(table, row);
    }
    {
        const Row row = runReplay(replay_records, replay_rounds);
        rows.push_back(row);
        tableRow(table, row);
    }
    {
        const Row row = runRollback(rollback_rounds);
        rows.push_back(row);
        tableRow(table, row);
    }

    bench::emit(opts, table,
                "Request journal: group-commit overhead, reopen replay "
                "and lossless rollback (PC_X32, Encrypted, AES-NI CTR, " +
                    std::to_string(
                        std::thread::hardware_concurrency()) +
                    " hardware threads)");
    writeJson(out_path, rows);
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
}
