/**
 * @file
 * Oblivious data-structure benchmark: structural probe cost and
 * wall-clock query throughput of the src/ds/ layer (ObliviousMap
 * lookups, ObliviousIndex range scans, and the composed hash-join) in
 * its batched-wave form versus a naive per-probe client.
 *
 * The naive client issues every probe as its own sequential access
 * with no wave machinery: a width-w range is w chained successor
 * queries (each paying the full binary-lift), a join runs its two legs
 * row by row, and a k-key lookup batch is k separate gets. Both forms
 * are equally oblivious — every probe count is input-independent — but
 * the batched form amortizes the probe schedule across the query, so
 * accesses_per_query (the leakage-contract cost, lower-better) drops
 * sharply for ranges and joins, and queries_per_sec follows. For
 * map_get the per-key schedule is already minimal (4 accesses/key);
 * those rows document that the wave engine adds no overhead.
 *
 *   $ ./oram_ds [--scale=F] [--csv] [--out=BENCH_ds.json]
 *
 * JSON schema: one record per (workload, backend, mode) with
 *   {"bench": "ds", "workload", "backend", "mode", "width",
 *    "queries", "accesses_per_query", "queries_per_sec",
 *    "us_per_query", "commit"}
 * where workload is map_get (16-key lookup batch), index_range
 * (width-8 range scan) or hash_join (width-8 join), mode is "batched"
 * (wave submit + prefetch hints) or "naive" (one access per probe),
 * and accesses_per_query is the measured ORAM access count per query —
 * input-independent by construction, so any drift is a leakage-contract
 * regression, not noise.
 */
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "ds/oblivious_index.hpp"
#include "ds/oblivious_join.hpp"
#include "ds/oblivious_map.hpp"
#include "util/rng.hpp"

using namespace froram;

namespace {

constexpr u32 kValueBytes = 16;
constexpr u64 kMapBuckets = 4096;
constexpr Addr kIndexBase = kMapBuckets;
constexpr u64 kIndexBlocks = 2048; // 25-byte entries, 2 per 64 B block
constexpr u32 kWidth = 8;     ///< range/join width (public)
constexpr u64 kMapBatch = 16; ///< keys per map_get query

struct Row {
    std::string workload;
    std::string backend;
    std::string mode;
    u32 width = 0;
    u64 queries = 0;
    double accPerQuery = 0;
    double queriesPerSec = 0;
    double usPerQuery = 0;
};

struct Harness {
    OramSystem sys;
    ObliviousMap map;
    ObliviousIndex index;
    ObliviousHashJoin join;

    Harness(StorageBackendKind kind, const std::string& path,
            bool batched)
        : sys(SchemeId::PlbCompressed, makeCfg(kind, path)),
          map(sys.frontend(), 0, kMapBuckets, mapCfg(batched)),
          index(sys.frontend(), kIndexBase, kIndexBlocks,
                indexCfg(batched)),
          join(index, map)
    {
        // Populate: customers in the map, date-keyed orders in the
        // index, each order's value carrying its customer fk.
        Xoshiro256 rng(17);
        std::vector<u8> val(kValueBytes, 0);
        for (u64 c = 0; c < 2000; ++c) {
            for (auto& b : val)
                b = static_cast<u8>(rng.next());
            map.put(100000 + c, val.data());
        }
        std::vector<u64> keys;
        std::vector<u8> vals;
        for (u64 o = 0; o < 3000; ++o) {
            keys.push_back(1 + o);
            const u64 fk = 100000 + rng.below(2400); // some dangle
            for (u32 b = 0; b < kValueBytes; ++b)
                vals.push_back(
                    b < 8 ? static_cast<u8>(fk >> (8 * b)) : 0);
        }
        index.bulkLoad(keys.data(), vals.data(), keys.size());
    }

    static OramSystemConfig
    makeCfg(StorageBackendKind kind, const std::string& path)
    {
        OramSystemConfig cfg;
        cfg.capacityBytes = u64{64} << 20; // tree >> LLC: prefetch pays
        cfg.storage = StorageMode::Encrypted;
        cfg.backend = kind;
        cfg.backendPath = path;
        cfg.bucketScheme = BucketSchemeKind::Path;
        return cfg;
    }

    static ObliviousMapConfig
    mapCfg(bool batched)
    {
        ObliviousMapConfig cfg;
        cfg.valueBytes = kValueBytes;
        cfg.batchedProbes = batched;
        return cfg;
    }

    static ObliviousIndexConfig
    indexCfg(bool batched)
    {
        ObliviousIndexConfig cfg;
        cfg.valueBytes = kValueBytes;
        cfg.deltaCapacity = 32;
        cfg.batchedProbes = batched;
        return cfg;
    }
};

/**
 * Measure one workload on the batched and naive harness TOGETHER, in
 * alternating rounds: CPU frequency and cache state drift over a run,
 * so back-to-back A/B chunks are the only fair wall-clock comparison —
 * measuring one whole mode after the other hands the first mover the
 * boost-clock advantage.
 */
template <typename Fn>
std::pair<Row, Row>
measurePair(Harness& hb, Harness& hn, const char* workload,
            StorageBackendKind kind, u32 width, u64 queries,
            Fn&& one_query)
{
    constexpr u64 kRounds = 8;
    const u64 chunk = queries / kRounds + 1;
    // Warm-up so the measured phase sees steady-state buffers only.
    for (u64 q = 0; q < chunk; ++q) {
        one_query(hb, q);
        one_query(hn, q);
    }
    double secs[2] = {0, 0};
    u64 issued[2] = {0, 0};
    u64 acc0[2] = {hb.sys.frontend().stats().get("accesses"),
                   hn.sys.frontend().stats().get("accesses")};
    for (u64 r = 0; r < kRounds; ++r) {
        Harness* hs[2] = {&hb, &hn};
        for (int m = 0; m < 2; ++m) {
            const auto start = std::chrono::steady_clock::now();
            for (u64 q = 0; q < chunk; ++q)
                one_query(*hs[m], r * chunk + q);
            const auto end = std::chrono::steady_clock::now();
            secs[m] +=
                std::chrono::duration<double>(end - start).count();
            issued[m] += chunk;
        }
    }

    std::pair<Row, Row> rows;
    Row* out[2] = {&rows.first, &rows.second};
    Harness* hs[2] = {&hb, &hn};
    for (int m = 0; m < 2; ++m) {
        Row& row = *out[m];
        row.workload = workload;
        row.backend = toString(kind);
        row.mode = m == 0 ? "batched" : "naive";
        row.width = width;
        row.queries = issued[m];
        row.accPerQuery =
            static_cast<double>(
                hs[m]->sys.frontend().stats().get("accesses") -
                acc0[m]) /
            static_cast<double>(issued[m]);
        row.queriesPerSec = static_cast<double>(issued[m]) / secs[m];
        row.usPerQuery =
            1e6 * secs[m] / static_cast<double>(issued[m]);
    }
    return rows;
}

std::vector<Row>
runBackend(StorageBackendKind kind, const std::string& path,
           const std::string& path2, u64 queries)
{
    Harness hb(kind, path, /*batched=*/true);
    Harness hn(kind, path2, /*batched=*/false);
    Xoshiro256 rng(23);
    std::vector<Row> rows;

    {
        std::vector<u64> keys(kMapBatch);
        std::vector<u8> values(kMapBatch * kValueBytes);
        std::vector<u8> found(kMapBatch);
        auto pair = measurePair(
            hb, hn, "map_get", kind, static_cast<u32>(kMapBatch),
            queries, [&](Harness& h, u64) {
                for (u64 i = 0; i < kMapBatch; ++i)
                    keys[i] = 100000 + rng.below(2400);
                if (&h == &hb) {
                    h.map.getBatch(keys.data(), kMapBatch,
                                   values.data(), found.data());
                } else {
                    // Naive per-probe loop: one get (itself per-access
                    // submits) per key.
                    for (u64 i = 0; i < kMapBatch; ++i)
                        found[i] = h.map.get(keys[i],
                                             values.data() +
                                                 i * kValueBytes)
                                       ? 1
                                       : 0;
                }
            });
        rows.push_back(pair.first);
        rows.push_back(pair.second);
    }
    {
        std::vector<u64> rkeys(kWidth);
        std::vector<u8> rvals(kWidth * kValueBytes);
        // Naive per-probe client: no padded scan wave, so a width-w
        // range is w chained successor queries (range of width 1),
        // each paying the full binary-lift + minimum scan. The batched
        // form pays rangeAccesses(w) once — the amortization is the
        // whole point of the padded wave.
        auto pair = measurePair(
            hb, hn, "index_range", kind, kWidth, queries,
            [&](Harness& h, u64) {
                u64 lo = 1 + rng.below(2900);
                if (&h == &hb) {
                    h.index.range(lo, kWidth, rkeys.data(),
                                  rvals.data());
                } else {
                    for (u32 r = 0; r < kWidth; ++r) {
                        const u64 n = h.index.range(
                            lo, 1, rkeys.data() + r,
                            rvals.data() + size_t{r} * kValueBytes);
                        lo = n ? rkeys[r] + 1 : lo;
                    }
                }
            });
        rows.push_back(pair.first);
        rows.push_back(pair.second);
    }
    {
        JoinOutput out;
        std::vector<u64> rkeys(kWidth);
        std::vector<u8> rvals(kWidth * kValueBytes);
        std::vector<u8> mval(kValueBytes);
        auto pair = measurePair(
            hb, hn, "hash_join", kind, kWidth, queries,
            [&](Harness& h, u64) {
                u64 lo = 1 + rng.below(2900);
                if (&h == &hb) {
                    h.join.run(lo, kWidth, out);
                } else {
                    // Naive join: chained successor scans for the
                    // index leg, then one map probe per row.
                    for (u32 r = 0; r < kWidth; ++r) {
                        const u64 n = h.index.range(
                            lo, 1, rkeys.data() + r,
                            rvals.data() + size_t{r} * kValueBytes);
                        lo = n ? rkeys[r] + 1 : lo;
                    }
                    for (u32 r = 0; r < kWidth; ++r) {
                        u64 fk = 0;
                        const u8* p =
                            rvals.data() + size_t{r} * kValueBytes;
                        for (int b = 0; b < 8; ++b)
                            fk |= static_cast<u64>(p[b]) << (8 * b);
                        h.map.get(fk, mval.data());
                    }
                }
            });
        rows.push_back(pair.first);
        rows.push_back(pair.second);
    }
    return rows;
}

void
writeJson(const std::string& out_path, const std::vector<Row>& rows)
{
    std::ofstream out(out_path);
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return;
    }
    out << "[\n";
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row& r = rows[i];
        char buf[512];
        std::snprintf(
            buf, sizeof(buf),
            "  {\"bench\": \"ds\", \"workload\": \"%s\", "
            "\"backend\": \"%s\", \"mode\": \"%s\", \"width\": %u, "
            "\"queries\": %llu, \"accesses_per_query\": %.2f, "
            "\"queries_per_sec\": %.1f, \"us_per_query\": %.2f, "
            "\"commit\": \"%s\"}%s\n",
            r.workload.c_str(), r.backend.c_str(), r.mode.c_str(),
            r.width, static_cast<unsigned long long>(r.queries),
            r.accPerQuery, r.queriesPerSec, r.usPerQuery,
            bench::gitRev(), i + 1 < rows.size() ? "," : "");
        out << buf;
    }
    out << "]\n";
}

} // namespace

int
main(int argc, char** argv)
{
    const auto opts = bench::BenchOptions::parse(argc, argv);
    std::string out_path = "BENCH_ds.json";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--out=", 0) == 0)
            out_path = arg.substr(6);
    }
    const u64 queries = opts.scaled(400);
    const std::string mmap_path = "/tmp/froram_oram_ds.bin";

    std::vector<Row> rows;
    TextTable table({"workload", "backend", "mode", "width",
                     "acc_per_query", "queries_per_sec",
                     "us_per_query"});
    for (const StorageBackendKind kind :
         {StorageBackendKind::Flat, StorageBackendKind::TimedDram}) {
        for (Row& row : runBackend(kind, mmap_path + ".b",
                                   mmap_path + ".n", queries)) {
            table.newRow();
            table.cell(row.workload);
            table.cell(row.backend);
            table.cell(row.mode);
            table.cell(static_cast<u64>(row.width));
            table.cell(row.accPerQuery, 1);
            table.cell(row.queriesPerSec, 0);
            table.cell(row.usPerQuery, 1);
            rows.push_back(std::move(row));
        }
    }
    std::remove((mmap_path + ".b").c_str());
    std::remove((mmap_path + ".n").c_str());

    bench::emit(opts, table,
                "Oblivious data structures (64 MB ORAM, Encrypted "
                "storage, PC_X32, Path buckets): batched probe waves "
                "vs naive per-probe loops, A/B-interleaved rounds");
    writeJson(out_path, rows);
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
}
