/**
 * @file
 * Figure 8 reproduction: apples-to-apples comparison with Ren et al.
 * [26] using all of that work's parameters: 4 DRAM channels, 2.6 GHz
 * core, 128-byte cache lines and ORAM blocks, Z = 3. Compares R_X8
 * against PC_X64 (128 B blocks) and PC_X32 (64 B blocks, which then
 * fetches two ORAM blocks per 128 B line... the paper instead runs
 * PC_X32 with a 64 B block and line; we model it the same way: 64 B
 * lines for the PC_X32 row).
 *
 * Expected shape (paper): both PC configurations ~1.27x over R_X8;
 * PosMap traffic cut ~95%; the 128 B blocks of PC_X64 help benchmarks
 * with spatial locality (hmmer, libq) and hurt those without (bzip2,
 * mcf, omnet).
 */
#include "bench_common.hpp"

using namespace froram;
using namespace froram::bench;

int
main(int argc, char** argv)
{
    const auto opts = BenchOptions::parse(argc, argv);
    const u64 refs = opts.scaled(300000);
    const u64 warmup = opts.scaled(120000);

    LatencyModel lat;
    lat.procGHz = 2.6;

    OramSystemConfig big; // 128 B blocks ([26] parameters)
    big.capacityBytes = u64{4} << 30;
    big.blockBytes = 128;
    big.z = 3;
    big.dramChannels = 4;
    big.latency = lat;
    big.storage = StorageMode::Null;
    big.plbBytes = 64 * 1024;

    OramSystemConfig small = big; // 64 B blocks for PC_X32
    small.blockBytes = 64;
    small.z = 3;

    HierarchyConfig hier;
    hier.l1.lineBytes = 128;
    hier.l2.lineBytes = 128;

    HierarchyConfig hier64 = HierarchyConfig{}; // 64 B lines

    TextTable table({"bench", "R_X8", "PC_X64", "PC_X32",
                     "R_posmap_KB", "PC_X64_posmap_KB"});
    std::vector<double> s_r, s_64, s_32;
    double r_posmap_sum = 0, pc_posmap_sum = 0;
    for (const auto& spec : specSuite()) {
        const auto base128 = runInsecure(4, spec, refs, warmup, 13,
                                         hier, lat);
        const auto base64 = runInsecure(4, spec, refs, warmup, 13,
                                        hier64, lat);
        const auto r =
            runOnOram(SchemeId::Recursive, big, spec, refs, warmup, 13,
                      hier);
        const auto pc64 = runOnOram(SchemeId::PlbCompressed, big, spec,
                                    refs, warmup, 13, hier);
        const auto pc32 = runOnOram(SchemeId::PlbCompressed, small, spec,
                                    refs, warmup, 13, hier64);
        const double sr = static_cast<double>(r.cycles) / base128.cycles;
        const double s64 =
            static_cast<double>(pc64.cycles) / base128.cycles;
        const double s32 =
            static_cast<double>(pc32.cycles) / base64.cycles;
        s_r.push_back(sr);
        s_64.push_back(s64);
        s_32.push_back(s32);
        r_posmap_sum += r.posmapFraction() * r.kbPerAccess();
        pc_posmap_sum += pc64.posmapFraction() * pc64.kbPerAccess();
        table.newRow();
        table.cell(spec.name);
        table.cell(sr, 2);
        table.cell(s64, 2);
        table.cell(s32, 2);
        table.cell(r.posmapFraction() * r.kbPerAccess(), 2);
        table.cell(pc64.posmapFraction() * pc64.kbPerAccess(), 2);
    }
    table.newRow();
    table.cell(std::string("geomean"));
    table.cell(geomean(s_r), 2);
    table.cell(geomean(s_64), 2);
    table.cell(geomean(s_32), 2);
    table.cell(std::string("-"));
    table.cell(std::string("-"));
    emit(opts, table,
         "Figure 8: [26] parameters (4ch, 2.6 GHz, 128 B lines, Z=3)");

    std::cout << "\nPC_X64 speedup over R_X8 (geomean): "
              << geomean(s_r) / geomean(s_64) << "x  (paper: ~1.27x)\n";
    std::cout << "PC_X32 speedup over R_X8 (geomean): "
              << geomean(s_r) / geomean(s_32) << "x  (paper: ~1.27x)\n";
    std::cout << "PosMap traffic reduction (PC_X64 vs R_X8): "
              << (1.0 - pc_posmap_sum / r_posmap_sum) * 100.0
              << "%  (paper: ~95%)\n";
    return 0;
}
