/**
 * @file
 * Shared infrastructure for the table/figure reproduction harnesses.
 *
 * Every bench binary accepts `--scale=<float>` (or env FRORAM_BENCH_SCALE)
 * to scale simulated work, `--csv` to emit only CSV, and prints both an
 * aligned table and a CSV block by default. Defaults are tuned so each
 * binary finishes in roughly a minute on a laptop.
 */
#ifndef FRORAM_BENCH_BENCH_COMMON_HPP
#define FRORAM_BENCH_BENCH_COMMON_HPP

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "cachesim/core_model.hpp"
#include "core/oram_system.hpp"
#include "util/table.hpp"
#include "workload/spec_proxy.hpp"

namespace froram {
namespace bench {

/** Parsed command-line options common to all benches. */
struct BenchOptions {
    double scale = 1.0;
    bool csvOnly = false;

    static BenchOptions
    parse(int argc, char** argv)
    {
        BenchOptions o;
        if (const char* env = std::getenv("FRORAM_BENCH_SCALE"))
            o.scale = std::atof(env);
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg.rfind("--scale=", 0) == 0)
                o.scale = std::atof(arg.c_str() + 8);
            else if (arg == "--csv")
                o.csvOnly = true;
        }
        if (o.scale <= 0)
            o.scale = 1.0;
        return o;
    }

    u64
    scaled(u64 base) const
    {
        const double v = static_cast<double>(base) * scale;
        return v < 1 ? 1 : static_cast<u64>(v);
    }
};

/** Git commit the binary was configured from (CMake bakes it in), so
 *  BENCH_*.json rows are attributable across PRs. */
inline const char*
gitRev()
{
#ifdef FRORAM_GIT_REV
    return FRORAM_GIT_REV;
#else
    return "unknown";
#endif
}

/** p-th percentile (0..100) of a sample set; reorders `v` in place. */
inline double
percentile(std::vector<double>& v, double p)
{
    if (v.empty())
        return 0.0;
    const double rank = p / 100.0 * static_cast<double>(v.size() - 1);
    const size_t idx = static_cast<size_t>(rank);
    std::nth_element(v.begin(),
                     v.begin() + static_cast<std::ptrdiff_t>(idx),
                     v.end());
    return v[idx];
}

/** Geometric mean of a vector of positive values. */
inline double
geomean(const std::vector<double>& v)
{
    if (v.empty())
        return 0.0;
    double log_sum = 0;
    for (double x : v)
        log_sum += std::log(x);
    return std::exp(log_sum / static_cast<double>(v.size()));
}

/** Result of running one workload on one memory system. */
struct PerfPoint {
    std::string bench;
    std::string scheme;
    u64 memRefs = 0;
    u64 llcMisses = 0;
    u64 cycles = 0;
    u64 oramBytes = 0;       ///< DRAM bytes moved by the ORAM
    u64 posmapBytes = 0;     ///< ... attributable to PosMap machinery
    u64 frontendAccesses = 0;

    double
    kbPerAccess() const
    {
        return frontendAccesses == 0
                   ? 0.0
                   : static_cast<double>(oramBytes) / frontendAccesses /
                         1024.0;
    }

    double
    posmapFraction() const
    {
        return oramBytes == 0 ? 0.0
                              : static_cast<double>(posmapBytes) /
                                    static_cast<double>(oramBytes);
    }
};

/** Run a SPEC proxy over the cache hierarchy on an ORAM scheme. */
inline PerfPoint
runOnOram(SchemeId id, const OramSystemConfig& sys_cfg,
          const SpecProxySpec& spec, u64 refs, u64 warmup, u64 seed,
          const HierarchyConfig& hier_cfg = HierarchyConfig{})
{
    OramSystem sys(id, sys_cfg);
    OramMainMemory mem(&sys.frontend());
    MemoryHierarchy hier(hier_cfg, &mem);
    InOrderCore core(&hier);
    auto gen = makeSpecProxy(spec, seed);

    const StatSet& fs = sys.frontend().stats();
    // Warm the caches, then snapshot so reported traffic matches the
    // reported cycles.
    core.run(*gen, 0, warmup);
    const u64 bytes0 = fs.get("bytesMoved");
    const u64 posmap0 = fs.get("posmapBytes");
    const u64 acc0 = fs.get("accesses");

    const auto r = core.run(*gen, refs, 0);

    PerfPoint p;
    p.bench = spec.name;
    p.scheme = sys.frontend().name();
    p.memRefs = r.memRefs;
    p.llcMisses = r.llcMisses;
    p.cycles = r.cycles;
    p.oramBytes = fs.get("bytesMoved") - bytes0;
    p.posmapBytes = fs.get("posmapBytes") - posmap0;
    p.frontendAccesses = fs.get("accesses") - acc0;
    return p;
}

/** Run a SPEC proxy over the cache hierarchy on plain (insecure) DRAM. */
inline PerfPoint
runInsecure(u32 dram_channels, const SpecProxySpec& spec, u64 refs,
            u64 warmup, u64 seed,
            const HierarchyConfig& hier_cfg = HierarchyConfig{},
            const LatencyModel& lat = LatencyModel{})
{
    InsecureMemory imem(dram_channels, lat);
    PlainMainMemory mem(&imem);
    MemoryHierarchy hier(hier_cfg, &mem);
    InOrderCore core(&hier);
    auto gen = makeSpecProxy(spec, seed);
    core.run(*gen, 0, warmup);
    const auto r = core.run(*gen, refs, 0);
    PerfPoint p;
    p.bench = spec.name;
    p.scheme = "insecure";
    p.memRefs = r.memRefs;
    p.llcMisses = r.llcMisses;
    p.cycles = r.cycles;
    return p;
}

/** Emit the table (unless csv-only) and the CSV block. */
inline void
emit(const BenchOptions& opts, const TextTable& table,
     const std::string& title)
{
    if (!opts.csvOnly) {
        std::cout << "\n== " << title << " ==\n\n";
        table.print(std::cout);
        std::cout << "\n--- CSV ---\n";
    }
    table.printCsv(std::cout);
    if (!opts.csvOnly)
        std::cout << "--- end CSV ---\n";
}

} // namespace bench
} // namespace froram

#endif // FRORAM_BENCH_BENCH_COMMON_HPP
