/**
 * @file
 * Storage-backend throughput comparison: wall-clock accesses/sec of the
 * same PC_X32 frontend over each pluggable backend, plus the simulated
 * memory time reported by the timed backend.
 *
 * This is the harness behind the multi-backend scaling direction: Flat
 * is the functional-simulation ceiling (how fast the controller logic
 * itself runs), TimedDram adds the cycle-level DRAM pricing used by the
 * figure reproductions, and MmapFile shows the cost of pushing every
 * bucket image through a persistent mapping.
 *
 *   $ ./throughput_backends [--scale=F] [--csv]
 */
#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "util/rng.hpp"

using namespace froram;

namespace {

struct Row {
    const char* backend;
    double wallAccPerSec;
    double wallUsPerAcc;
    double simUsPerAcc;
    u64 touchedMb;
};

Row
runOne(StorageBackendKind kind, const std::string& path, u64 accesses)
{
    OramSystemConfig cfg;
    cfg.capacityBytes = u64{64} << 20; // 64 MB ORAM: ~20-level tree
    cfg.storage = StorageMode::Encrypted;
    cfg.backend = kind;
    cfg.backendPath = path;
    OramSystem sys(SchemeId::PlbCompressed, cfg);
    const u64 blocks = cfg.capacityBytes / cfg.blockBytes;

    Xoshiro256 rng(3);
    std::vector<u8> payload(cfg.blockBytes, 0xC5);

    // Warm up the tree so steady-state paths carry real blocks.
    const u64 warmup = accesses / 4 + 1;
    for (u64 i = 0; i < warmup; ++i)
        sys.frontend().access(rng.below(blocks), true, &payload);

    u64 sim_cycles = 0;
    const auto start = std::chrono::steady_clock::now();
    for (u64 i = 0; i < accesses; ++i) {
        const Addr addr = rng.below(blocks);
        if (i % 4 == 0)
            sim_cycles += sys.frontend()
                              .access(addr, true, &payload)
                              .cycles;
        else
            sim_cycles += sys.frontend().access(addr, false).cycles;
    }
    const auto end = std::chrono::steady_clock::now();
    const double secs =
        std::chrono::duration<double>(end - start).count();

    Row row;
    row.backend = toString(kind);
    row.wallAccPerSec = static_cast<double>(accesses) / secs;
    row.wallUsPerAcc = 1e6 * secs / static_cast<double>(accesses);
    row.simUsPerAcc = static_cast<double>(sim_cycles) /
                      static_cast<double>(accesses) /
                      cfg.latency.procGHz / 1000.0;
    row.touchedMb = sys.storage().bytesTouched() >> 20;
    return row;
}

} // namespace

int
main(int argc, char** argv)
{
    const auto opts = bench::BenchOptions::parse(argc, argv);
    const u64 accesses = opts.scaled(20000);
    const std::string path = "/tmp/froram_throughput_backends.bin";

    TextTable table({"backend", "wall_acc_per_sec", "wall_us_per_acc",
                     "sim_us_per_acc", "touched_mb"});
    for (const StorageBackendKind kind :
         {StorageBackendKind::Flat, StorageBackendKind::TimedDram,
          StorageBackendKind::MmapFile}) {
        const Row row = runOne(kind, path, accesses);
        table.newRow();
        table.cell(row.backend);
        table.cell(row.wallAccPerSec, 0);
        table.cell(row.wallUsPerAcc, 2);
        table.cell(row.simUsPerAcc, 2);
        table.cell(row.touchedMb);
    }
    std::remove(path.c_str());

    bench::emit(opts, table,
                "Storage-backend throughput (PC_X32, 64 MB ORAM, 3:1 "
                "read:write; sim time is 0 for untimed backends)");
    return 0;
}
