/**
 * @file
 * Figure 9 reproduction: PC_X32 speedup relative to the Phantom [21]
 * parameterization (4 GB ORAM as 2^20 4 KB blocks, L = 19, Z = 4, no
 * recursion, 32 KB CLOCK block buffer, 128 B processor cache lines),
 * both on 2 DRAM channels.
 *
 * Expected shape (paper): ~10x average speedup (log scale); the driver
 * is byte movement per access (a 64 B-block path moves ~2% of a 4 KB-
 * block path), partially offset by Phantom's block buffer on
 * high-locality benchmarks.
 */
#include "bench_common.hpp"

using namespace froram;
using namespace froram::bench;

int
main(int argc, char** argv)
{
    const auto opts = BenchOptions::parse(argc, argv);
    const u64 refs = opts.scaled(60000);
    const u64 warmup = opts.scaled(30000);

    OramSystemConfig pc;
    pc.capacityBytes = u64{4} << 30;
    pc.dramChannels = 2;
    pc.storage = StorageMode::Null;
    pc.plbBytes = 64 * 1024;

    OramSystemConfig ph = pc;
    ph.phantomBlockBytes = 4096;
    ph.phantomForceLevels = 19;
    ph.phantomBufferBytes = 32 * 1024;

    // Phantom's processor used 128 B lines (Section 7.1.6).
    HierarchyConfig hier128;
    hier128.l1.lineBytes = 128;
    hier128.l2.lineBytes = 128;

    TextTable table({"bench", "phantom_cycles", "pc_x32_cycles",
                     "speedup", "phantom_KB_per_acc", "pc_KB_per_acc"});
    std::vector<double> speedups;
    for (const auto& spec : specSuite()) {
        const auto phantom = runOnOram(SchemeId::Phantom, ph, spec, refs,
                                       warmup, 17, hier128);
        const auto pcx = runOnOram(SchemeId::PlbCompressed, pc, spec,
                                   refs, warmup, 17);
        const double speedup = static_cast<double>(phantom.cycles) /
                               static_cast<double>(pcx.cycles);
        speedups.push_back(speedup);
        table.newRow();
        table.cell(spec.name);
        table.cell(u64{phantom.cycles});
        table.cell(u64{pcx.cycles});
        table.cell(speedup, 2);
        table.cell(phantom.kbPerAccess(), 1);
        table.cell(pcx.kbPerAccess(), 2);
    }
    table.newRow();
    table.cell(std::string("geomean"));
    table.cell(std::string("-"));
    table.cell(std::string("-"));
    table.cell(geomean(speedups), 2);
    table.cell(std::string("-"));
    table.cell(std::string("-"));
    emit(opts, table,
         "Figure 9: PC_X32 speedup over Phantom w/ 4 KB blocks");

    std::cout << "\nGeomean speedup: " << geomean(speedups)
              << "x  (paper: ~10x)\n";
    return 0;
}
