/**
 * @file
 * Figure 7 reproduction: average data movement (KB) per ORAM access
 * (i.e. per LLC miss+eviction) for R_X8, P_X16, PC_X32, PI_X8 and
 * PIC_X32 at 4 / 16 / 64 GB capacities, split into PosMap and Data
 * components (the paper's white bars are the PosMap share). The access
 * stream is the LLC miss stream of the SPEC-proxy suite, as in the
 * paper.
 *
 * Expected shape (paper): R_X8's PosMap share grows quickly with
 * capacity; at 4 GB PC_X32 cuts PosMap traffic ~82% and total ~38% vs
 * R_X8, at 64 GB ~90% / ~57%; PI_X8 spends nearly half its bytes on
 * the PosMap (fat flat counters), which PIC_X32 fixes.
 *
 * Storage is Null (placement-free) so the 64 GB configurations run in
 * O(1) host memory; byte accounting is exact regardless.
 */
#include "bench_common.hpp"

using namespace froram;
using namespace froram::bench;

int
main(int argc, char** argv)
{
    const auto opts = BenchOptions::parse(argc, argv);
    const u64 refs = opts.scaled(120000);
    const u64 warmup = opts.scaled(60000);

    // A representative locality cross-section of the suite.
    const char* benches[] = {"astar", "gcc", "hmmer", "libq", "mcf",
                             "omnet"};
    const SchemeId schemes[] = {
        SchemeId::Recursive, SchemeId::Plb, SchemeId::PlbCompressed,
        SchemeId::PlbIntegrity, SchemeId::PlbIntegrityCompressed};

    TextTable table({"capacity_GB", "scheme", "KB_per_access",
                     "posmap_KB", "data_KB", "posmap_pct"});
    double r8_total_4gb = 0, pc_total_4gb = 0;
    double r8_pos_4gb = 0, pc_pos_4gb = 0;
    double r8_total_64gb = 0, pc_total_64gb = 0;
    double r8_pos_64gb = 0, pc_pos_64gb = 0;
    for (u64 gb : {4, 16, 64}) {
        for (SchemeId id : schemes) {
            OramSystemConfig cfg;
            cfg.capacityBytes = gb << 30;
            cfg.dramChannels = 2;
            cfg.storage = StorageMode::Null;
            cfg.plbBytes = 64 * 1024;

            u64 bytes = 0, posmap = 0, accesses = 0;
            std::string scheme_name;
            for (const char* b : benches) {
                const auto p = runOnOram(id, cfg, specByName(b), refs,
                                         warmup, 19);
                bytes += p.oramBytes;
                posmap += p.posmapBytes;
                accesses += p.frontendAccesses;
                scheme_name = p.scheme;
            }
            const double total_kb =
                static_cast<double>(bytes) / accesses / 1024.0;
            const double posmap_kb =
                static_cast<double>(posmap) / accesses / 1024.0;
            table.newRow();
            table.cell(u64{gb});
            table.cell(scheme_name);
            table.cell(total_kb, 2);
            table.cell(posmap_kb, 2);
            table.cell(total_kb - posmap_kb, 2);
            table.cell(total_kb == 0 ? 0 : 100.0 * posmap_kb / total_kb,
                       1);

            if (gb == 4 && id == SchemeId::Recursive) {
                r8_total_4gb = total_kb;
                r8_pos_4gb = posmap_kb;
            }
            if (gb == 4 && id == SchemeId::PlbCompressed) {
                pc_total_4gb = total_kb;
                pc_pos_4gb = posmap_kb;
            }
            if (gb == 64 && id == SchemeId::Recursive) {
                r8_total_64gb = total_kb;
                r8_pos_64gb = posmap_kb;
            }
            if (gb == 64 && id == SchemeId::PlbCompressed) {
                pc_total_64gb = total_kb;
                pc_pos_64gb = posmap_kb;
            }
        }
    }
    emit(opts, table,
         "Figure 7: data moved per ORAM access by capacity (SPEC-proxy "
         "LLC miss stream)");

    std::cout << "\nAt 4 GB, PC_X32 vs R_X8: PosMap bytes -"
              << (1.0 - pc_pos_4gb / r8_pos_4gb) * 100.0 << "% (paper "
              << "-82%), total -"
              << (1.0 - pc_total_4gb / r8_total_4gb) * 100.0
              << "% (paper -38%)\n";
    std::cout << "At 64 GB, PC_X32 vs R_X8: PosMap bytes -"
              << (1.0 - pc_pos_64gb / r8_pos_64gb) * 100.0 << "% (paper "
              << "-90%), total -"
              << (1.0 - pc_total_64gb / r8_total_64gb) * 100.0
              << "% (paper -57%)\n";
    return 0;
}
