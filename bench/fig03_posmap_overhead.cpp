/**
 * @file
 * Figure 3 reproduction: percentage of bytes read from PosMap ORAMs in a
 * full Recursive ORAM access, as a function of Data ORAM capacity
 * (2^30..2^40 bytes), for block sizes 64/128 B and on-chip PosMap
 * budgets 8 KB / 256 KB (series b64_pm8, b128_pm8, b64_pm256,
 * b128_pm256), X = 8 following [26], Z = 4.
 *
 * Expected shape (paper): 39-56% at 4 GB depending on block size;
 * fraction grows with capacity; kinks where another PosMap ORAM is
 * added (H increments); larger on-chip PosMap only slightly dampens.
 */
#include "bench_common.hpp"
#include "core/analysis.hpp"

using namespace froram;

int
main(int argc, char** argv)
{
    const auto opts = bench::BenchOptions::parse(argc, argv);

    struct Series {
        const char* name;
        u64 blockBytes;
        u64 onchipBytes;
    };
    const Series series[] = {{"b64_pm8", 64, 8 * 1024},
                             {"b128_pm8", 128, 8 * 1024},
                             {"b64_pm256", 64, 256 * 1024},
                             {"b128_pm256", 128, 256 * 1024}};

    TextTable table({"log2_capacity", "series", "H", "posmap_pct",
                     "data_KB_per_access", "posmap_KB_per_access"});
    for (u32 lg = 30; lg <= 40; ++lg) {
        for (const auto& s : series) {
            const auto r = analyzeRecursiveBandwidth(
                u64{1} << lg, s.blockBytes, /*posmap_block=*/32, /*z=*/4,
                s.onchipBytes);
            table.newRow();
            table.cell(u64{lg});
            table.cell(std::string(s.name));
            table.cell(u64{r.h});
            table.cell(100.0 * r.posmapFraction(), 1);
            table.cell(static_cast<double>(r.dataBytes) / 1024.0, 2);
            table.cell(static_cast<double>(r.posmapBytes) / 1024.0, 2);
        }
    }
    bench::emit(opts, table,
                "Figure 3: % bytes from PosMap ORAMs in a full Recursive "
                "ORAM access (X=8, Z=4)");
    return 0;
}
