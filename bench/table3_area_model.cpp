/**
 * @file
 * Table 3 reproduction: post-synthesis area breakdown of the ORAM
 * controller by DRAM channel count (32 nm analytic model; see DESIGN.md
 * substitution #4), plus the Section 7.2.2 post-layout total and the
 * Section 7.2.3 design variants (no-recursion PosMap, 64 KB PLB).
 *
 * Paper values (post-synthesis % of total / total mm^2):
 *   channels:    1      2      4
 *   Frontend   31.2   30.0   22.5
 *     PosMap    7.3    7.0    5.3
 *     PLB      10.2    9.7    7.3
 *     PMMAC    12.4   11.9    8.8
 *   Stash      28.3   28.9   21.9
 *   AES        40.5   41.1   55.6
 *   total      .316   .326   .438
 * Post-layout (2 ch): .47 mm^2 at 1 GHz.
 */
#include "area/area_model.hpp"
#include "bench_common.hpp"
#include "core/unified_frontend.hpp"

using namespace froram;
using namespace froram::bench;

int
main(int argc, char** argv)
{
    const auto opts = BenchOptions::parse(argc, argv);

    TextTable table({"channels", "posmap_pct", "plb_pct", "pmmac_pct",
                     "misc_pct", "frontend_pct", "stash_pct", "aes_pct",
                     "total_mm2", "paper_mm2"});
    const double paper_total[] = {0.316, 0.326, 0.438};
    int i = 0;
    for (u32 ch : {1u, 2u, 4u}) {
        AreaInputs in;
        in.channels = ch;
        const auto a = AreaModel::synthesis(in);
        const double t = a.total();
        table.newRow();
        table.cell(u64{ch});
        table.cell(100.0 * a.posmap / t, 1);
        table.cell(100.0 * a.plb / t, 1);
        table.cell(100.0 * a.pmmac / t, 1);
        table.cell(100.0 * a.misc / t, 1);
        table.cell(100.0 * a.frontend() / t, 1);
        table.cell(100.0 * a.stash / t, 1);
        table.cell(100.0 * a.aes / t, 1);
        table.cell(t, 3);
        table.cell(paper_total[i++], 3);
    }
    emit(opts, table, "Table 3: post-synthesis area breakdown (model)");

    AreaInputs two;
    two.channels = 2;
    std::cout << "\nPost-layout total (2 channels): "
              << AreaModel::layout(two).total()
              << " mm^2  (paper: .47 mm^2)\n";

    // Section 7.2.3 variants.
    AreaInputs norec = two;
    norec.onChipPosMapBits = (u64{1} << 20) * 20;
    std::cout << "No-recursion 2^20-entry PosMap: "
              << AreaModel::synthesis(norec).posmap
              << " mm^2 for the PosMap alone (paper: ~5 mm^2, >10x "
                 "total)\n";

    AreaInputs bigplb;
    bigplb.channels = 1;
    bigplb.plbDataBits = 64 * 1024 * 8;
    bigplb.plbEntries = 1024;
    AreaInputs smallplb;
    smallplb.channels = 1;
    std::cout << "64 KB PLB (1 channel): +"
              << (AreaModel::synthesis(bigplb).total() /
                      AreaModel::synthesis(smallplb).total() -
                  1.0) * 100.0
              << "% total area  (paper: +29%, PLB = 26% of total)\n";

    // On-chip PosMap bits for the evaluated schemes (context for the
    // "8 KB PosMap" hardware default).
    TextTable onchip({"scheme", "capacity_GB", "onchip_posmap_bits",
                      "KB"});
    for (u64 gb : {4, 64}) {
        for (SchemeId id :
             {SchemeId::Recursive, SchemeId::PlbCompressed,
              SchemeId::PlbIntegrityCompressed}) {
            OramSystemConfig cfg;
            cfg.capacityBytes = gb << 30;
            cfg.storage = StorageMode::Null;
            OramSystem sys(id, cfg);
            onchip.newRow();
            onchip.cell(sys.frontend().name());
            onchip.cell(u64{gb});
            onchip.cell(sys.frontend().onChipPosMapBits());
            onchip.cell(
                static_cast<double>(sys.frontend().onChipPosMapBits()) /
                    8192.0,
                1);
        }
    }
    emit(opts, onchip, "On-chip PosMap sizes by scheme");
    return 0;
}
