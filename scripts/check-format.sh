#!/usr/bin/env bash
# clang-format check for the files maintained under .clang-format.
#
# The inherited tree predates the style file, so only files touched since
# the storage-backend PR are enforced; extend this list as files are
# modernized.
set -euo pipefail
cd "$(dirname "$0")/.."

FILES=(
    src/mem/storage_backend.hpp
    src/mem/storage_backend.cpp
    src/mem/flat_memory_backend.hpp
    src/mem/flat_memory_backend.cpp
    src/mem/timed_dram_backend.hpp
    src/mem/mmap_file_backend.hpp
    src/mem/mmap_file_backend.cpp
    src/oram/tree_storage.cpp
    src/shard/request_queue.hpp
    src/shard/sharded_service.hpp
    src/shard/sharded_service.cpp
    tests/test_backend_conformance.cpp
    tests/test_sharded.cpp
    tests/test_sharded_restore.cpp
    bench/throughput_backends.cpp
    bench/oram_sharded.cpp
)

clang-format --version
clang-format --dry-run --Werror "${FILES[@]}"
echo "format check passed (${#FILES[@]} files)"
