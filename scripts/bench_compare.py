#!/usr/bin/env python3
"""Diff two BENCH_*.json files row by row and flag regressions.

Rows from the two files are matched on their identity keys (every
string/int field that is not a measured metric: bench, scheme, backend,
cipher, batch, shards, workers, batch_depth, capacity_mb, ...).  For
each matched row the numeric metrics are printed side by side with their
relative delta; metrics whose direction is known (acc_per_sec and
mb_per_sec are higher-is-better, the *_us latencies lower-is-better)
count as regressions when they move the wrong way by more than the
threshold (default 10%).

Exit status: 0 when no metric regressed past the threshold, 1 otherwise
(missing/unmatched rows are reported but do not fail the run — a new
row shape is an addition, not a regression).

Usage:
    bench_compare.py BASELINE.json CANDIDATE.json [--threshold=0.10]
"""

import argparse
import json
import sys

# Metric -> direction. +1: higher is better, -1: lower is better,
# 0: informational only (never flags).
METRICS = {
    "acc_per_sec": +1,
    "mb_per_sec": +1,
    "us_per_acc": -1,
    "p50_us": -1,
    "p99_us": -1,
    "p50_batch_us": -1,
    "p99_batch_us": -1,
    # Simulated online read cost in blocks per backend access; fixed
    # per (bucket_scheme, geometry), so any growth is a real structural
    # regression (e.g. Ring falling back to whole-path reads).
    "online_blocks_per_acc": -1,
    # BENCH_faults.json (bench/oram_faults.cpp): time-to-recover after a
    # forced quarantine + rollback. fault_rate/mode are identity fields
    # (a 1%-fault row only ever compares against another 1%-fault row);
    # the fault/retry tallies describe the injected load, not quality.
    "recovery_ms_p50": -1,
    "recovery_ms_p99": -1,
    # BENCH_ds.json (bench/oram_ds.cpp): oblivious data-structure
    # queries. accesses_per_query is the structural probe cost of a
    # query (the leakage contract made a number) — input-independent by
    # construction, so ANY growth is a real schedule regression, not
    # noise. workload/mode/width/backend are identity fields.
    "accesses_per_query": -1,
    "queries_per_sec": +1,
    "us_per_query": -1,
    # BENCH_journal.json (bench/oram_journal.cpp): the request journal.
    # fsync_batch is an identity field (0 = journal off, so the
    # unjournaled control row only compares against itself); replay
    # throughput and the reopen/rollback latencies are judged;
    # records/failed describe the driven load.
    "replay_records_per_sec": +1,
    "open_ms_p50": -1,
    "open_ms_p99": -1,
    "records": 0,
    "queries": 0,
    "faults": 0,
    "retries": 0,
    "failed": 0,
    "rounds": 0,
    "accesses": 0,
    "hardware_threads": 0,
}

# Fields that never identify a row (metrics + provenance).
NON_IDENTITY = set(METRICS) | {"commit"}


def row_key(row):
    """Identity of a row: every non-metric field, sorted for stability."""
    return tuple(
        sorted((k, v) for k, v in row.items() if k not in NON_IDENTITY)
    )


def fmt_key(key):
    return " ".join(f"{k}={v}" for k, v in key)


def load(path):
    try:
        with open(path) as f:
            rows = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"bench_compare: cannot read {path}: {e}")
    if not isinstance(rows, list):
        sys.exit(f"bench_compare: {path} is not a JSON row array")
    for r in rows:
        # Rows predating the batched engine had an implicit batch of 1;
        # normalize so old and new batch=1 rows keep matching.
        r.setdefault("batch", 1)
        # Rows predating the bucket-scheme seam were all Path ORAM;
        # normalize so they keep matching new scheme-tagged path rows.
        r.setdefault("bucket_scheme", "path")
    return {row_key(r): r for r in rows}


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="relative regression threshold (default 0.10 = 10%%)",
    )
    args = ap.parse_args()

    base = load(args.baseline)
    cand = load(args.candidate)

    regressions = 0
    for key in sorted(base):
        if key not in cand:
            print(f"[only in baseline]  {fmt_key(key)}")
            continue
        b, c = base[key], cand[key]
        lines = []
        row_flagged = False
        for metric, direction in METRICS.items():
            if metric not in b or metric not in c:
                continue
            bv, cv = float(b[metric]), float(c[metric])
            delta = (cv - bv) / bv if bv != 0 else 0.0
            flag = ""
            if direction != 0 and delta * direction < -args.threshold:
                flag = "  << REGRESSION"
                row_flagged = True
                regressions += 1
            elif direction != 0 and delta * direction > args.threshold:
                flag = "  (improved)"
            lines.append(
                f"    {metric:>14}: {bv:>12.2f} -> {cv:>12.2f} "
                f"({delta:+7.1%}){flag}"
            )
        marker = "!!" if row_flagged else "  "
        print(f"{marker} {fmt_key(key)}")
        for line in lines:
            print(line)
    for key in sorted(cand):
        if key not in base:
            print(f"[only in candidate] {fmt_key(key)}")

    if regressions:
        print(
            f"\nbench_compare: {regressions} metric(s) regressed more "
            f"than {args.threshold:.0%}"
        )
        return 1
    print(f"\nbench_compare: no regression beyond {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
